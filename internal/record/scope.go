package record

import (
	"fmt"
)

// ScopeFrame describes one open scope observed in a stream.
type ScopeFrame struct {
	Type    ScopeType
	Depth   uint16
	Context map[string]string // context from the OpenScope record, may be nil
}

// Tracker follows the scope structure of a record stream. It validates
// open/close balance and can synthesize BadCloseScope records to close all
// open scopes, which is how the streamin operator resynchronizes a stream
// after an upstream segment terminates unexpectedly.
//
// Tracker is not safe for concurrent use.
type Tracker struct {
	stack []ScopeFrame
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{} }

// Depth returns the number of currently open scopes.
func (t *Tracker) Depth() int { return len(t.stack) }

// Top returns the innermost open scope frame and true, or a zero frame and
// false when no scope is open.
func (t *Tracker) Top() (ScopeFrame, bool) {
	if len(t.stack) == 0 {
		return ScopeFrame{}, false
	}
	return t.stack[len(t.stack)-1], true
}

// Frames returns a copy of the open scope frames, outermost first.
func (t *Tracker) Frames() []ScopeFrame {
	out := make([]ScopeFrame, len(t.stack))
	copy(out, t.stack)
	return out
}

// ContextValue searches open scopes innermost-first for a context key,
// returning the first value found. This lets an operator deep inside an
// ensemble scope read, say, the clip's sample rate.
func (t *Tracker) ContextValue(key string) (string, bool) {
	for i := len(t.stack) - 1; i >= 0; i-- {
		if v, ok := t.stack[i].Context[key]; ok {
			return v, true
		}
	}
	return "", false
}

// Observe updates the tracker with one record and validates it against the
// current scope state. Data and control records are valid at any depth;
// scope records must match the tracked structure.
func (t *Tracker) Observe(r *Record) error {
	switch r.Kind {
	case KindOpenScope:
		if int(r.Scope) != len(t.stack) {
			return fmt.Errorf("%w: OpenScope at depth %d with %d scopes open",
				ErrScopeBalance, r.Scope, len(t.stack))
		}
		frame := ScopeFrame{Type: r.ScopeType, Depth: r.Scope}
		if r.PayloadType == PayloadContext {
			if ctx, err := r.Context(); err == nil {
				frame.Context = ctx
			}
		}
		t.stack = append(t.stack, frame)
		return nil
	case KindCloseScope, KindBadCloseScope:
		if len(t.stack) == 0 {
			return fmt.Errorf("%w: %s with no open scope", ErrScopeBalance, r.Kind)
		}
		top := t.stack[len(t.stack)-1]
		if int(r.Scope) != len(t.stack)-1 {
			return fmt.Errorf("%w: %s at depth %d, innermost open scope at depth %d",
				ErrScopeBalance, r.Kind, r.Scope, len(t.stack)-1)
		}
		if r.ScopeType != top.Type {
			return fmt.Errorf("%w: closing %s but innermost scope is %s",
				ErrScopeBalance, r.ScopeType, top.Type)
		}
		t.stack = t.stack[:len(t.stack)-1]
		return nil
	case KindData, KindControl:
		return nil
	default:
		return fmt.Errorf("record: observe: invalid kind %d", r.Kind)
	}
}

// CloseAll returns BadCloseScope records that close every open scope,
// innermost first, and resets the tracker. Callers emit these into the
// stream when the scope producer died before closing its scopes.
func (t *Tracker) CloseAll() []*Record {
	out := make([]*Record, 0, len(t.stack))
	for i := len(t.stack) - 1; i >= 0; i-- {
		f := t.stack[i]
		out = append(out, NewBadCloseScope(f.Type, f.Depth))
	}
	t.stack = t.stack[:0]
	return out
}

// Reset discards all tracked scope state.
func (t *Tracker) Reset() { t.stack = t.stack[:0] }

// ScopeBuilder helps an operator emit correctly nested scopes relative to a
// tracked input depth. It wraps a Tracker for the operator's *output*
// stream.
type ScopeBuilder struct {
	t Tracker
}

// Open emits (returns) an OpenScope record at the current output depth and
// pushes the new scope.
func (b *ScopeBuilder) Open(st ScopeType, ctx map[string]string) *Record {
	r := NewOpenScope(st, uint16(b.t.Depth()))
	if ctx != nil {
		r.SetContext(ctx)
	}
	// Observe cannot fail: the record is constructed at the tracked depth.
	if err := b.t.Observe(r); err != nil {
		panic("record: ScopeBuilder.Open: " + err.Error())
	}
	return r
}

// Close returns a CloseScope record for the innermost open scope and pops
// it. It returns nil when no scope is open.
func (b *ScopeBuilder) Close() *Record {
	top, ok := b.t.Top()
	if !ok {
		return nil
	}
	r := NewCloseScope(top.Type, top.Depth)
	if err := b.t.Observe(r); err != nil {
		panic("record: ScopeBuilder.Close: " + err.Error())
	}
	return r
}

// Depth returns the current output scope depth.
func (b *ScopeBuilder) Depth() int { return b.t.Depth() }

// CloseAll returns BadCloseScope records for all open output scopes.
func (b *ScopeBuilder) CloseAll() []*Record { return b.t.CloseAll() }
