package record

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
)

// v2TestRecords returns a deterministic mix of record shapes.
func v2TestRecords(n int) []*Record {
	out := make([]*Record, n)
	for i := range out {
		r := NewData(SubtypeAudio)
		r.Scope = uint16(i % 3)
		r.Seq = uint64(1000 + i)
		r.SourceID = uint32(7 + i)
		pcm := make([]int16, 8+i%5)
		for j := range pcm {
			pcm[j] = int16(i*31 + j)
		}
		r.SetPCM16(pcm)
		out[i] = r
	}
	return out
}

func sameRecord(t *testing.T, got, want *Record, i int) {
	t.Helper()
	if got.Kind != want.Kind || got.Subtype != want.Subtype || got.Scope != want.Scope ||
		got.ScopeType != want.ScopeType || got.Seq != want.Seq ||
		got.SourceID != want.SourceID || got.PayloadType != want.PayloadType ||
		!bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, want)
	}
}

func TestBatchWireRoundTrip(t *testing.T) {
	recs := v2TestRecords(7)
	wire := AppendBatchWire(nil, recs...)
	rd := NewReader(bytes.NewReader(wire))
	for i, want := range recs {
		got, err := rd.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		sameRecord(t, got, want, i)
	}
	if _, err := rd.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("after batch: %v, want EOF", err)
	}
	if rd.Count() != 7 {
		t.Fatalf("Count = %d, want 7", rd.Count())
	}
}

// TestMixedFramingStream interleaves v1 records and v2 batches on one
// stream: the reader must sniff each frame and decode all of them in
// order.
func TestMixedFramingStream(t *testing.T) {
	recs := v2TestRecords(10)
	var wire []byte
	wire = AppendWire(wire, recs[0])
	wire = AppendBatchWire(wire, recs[1:4]...)
	wire = AppendWire(wire, recs[4])
	wire = AppendWire(wire, recs[5])
	wire = AppendBatchWire(wire, recs[6:]...)
	rd := NewReader(bytes.NewReader(wire))
	for i, want := range recs {
		got, err := rd.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		sameRecord(t, got, want, i)
	}
	if _, err := rd.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("after stream: %v, want EOF", err)
	}
}

// TestBatchWriterFrameV1 pins the escape hatch: a FrameV1 writer emits
// per-record DRV1 frames byte-identical to AppendWire.
func TestBatchWriterFrameV1(t *testing.T) {
	recs := v2TestRecords(5)
	var want []byte
	for _, r := range recs {
		want = AppendWire(want, r)
	}
	var buf bytes.Buffer
	cfg := DefaultBatchConfig()
	cfg.Frame = FrameV1
	bw := NewBatchWriter(&buf, cfg)
	for _, r := range recs {
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("FrameV1 batch writer output differs from AppendWire framing")
	}
}

// TestCorruptBatchSkipped is the skip-mode resync contract: corruption
// inside one v2 batch loses exactly that batch — the reader counts it,
// re-syncs on the next frame magic, and keeps decoding the rest of the
// stream.
func TestCorruptBatchSkipped(t *testing.T) {
	recs := v2TestRecords(9)
	var wire []byte
	wire = AppendBatchWire(wire, recs[0:3]...)
	mark := len(wire)
	wire = AppendBatchWire(wire, recs[3:6]...)
	wire = AppendBatchWire(wire, recs[6:9]...)
	// Flip one payload byte in the middle batch, beyond its header.
	wire[mark+batchHdrSize+entryHdrSize+2] ^= 0x40

	rd := NewReader(bytes.NewReader(wire))
	var got []*Record
	for {
		r, err := rd.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got = append(got, r)
	}
	if len(got) != 6 {
		t.Fatalf("decoded %d records, want 6 (middle batch dropped whole)", len(got))
	}
	for i, want := range recs[0:3] {
		sameRecord(t, got[i], want, i)
	}
	for i, want := range recs[6:9] {
		sameRecord(t, got[3+i], want, 6+i)
	}
	if rd.CorruptBatches() != 1 {
		t.Fatalf("CorruptBatches = %d, want 1", rd.CorruptBatches())
	}
	// Strict mode surfaces the same corruption as an error instead.
	rd2 := NewReader(bytes.NewReader(wire))
	rd2.SetStrict(true)
	for i := 0; i < 3; i++ {
		if _, err := rd2.Read(); err != nil {
			t.Fatalf("strict read %d: %v", i, err)
		}
	}
	if _, err := rd2.Read(); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("strict corrupt batch: %v, want ErrBadChecksum", err)
	}
}

// TestCorruptBatchHeaderResync corrupts the batch header itself (the
// bodyLen cannot be trusted) and verifies byte-wise resync still finds
// the following frames.
func TestCorruptBatchHeaderResync(t *testing.T) {
	recs := v2TestRecords(6)
	var wire []byte
	wire = AppendBatchWire(wire, recs[0:3]...)
	mark := len(wire)
	wire = AppendBatchWire(wire, recs[3:6]...)
	wire[mark+6] ^= 0xFF // bodyLen byte, guarded by the header CRC

	rd := NewReader(bytes.NewReader(wire))
	var got []*Record
	for {
		r, err := rd.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got = append(got, r)
	}
	// The corrupted batch is lost to the resync scan; the reader must
	// still deliver the first batch and find no phantom records after.
	if len(got) != 3 {
		t.Fatalf("decoded %d records, want 3", len(got))
	}
}

// TestTornBatch ends the stream mid-batch: the reader reports
// io.ErrUnexpectedEOF, the signal StreamIn uses to repair open scopes.
func TestTornBatch(t *testing.T) {
	recs := v2TestRecords(4)
	wire := AppendBatchWire(nil, recs...)
	for _, cut := range []int{len(wire) - 1, len(wire) - batchTrailerSize - 3, batchHdrSize + 5, 6, 2} {
		rd := NewReader(bytes.NewReader(wire[:cut]))
		var err error
		for err == nil {
			_, err = rd.Read()
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Fatalf("cut at %d: %v, want (Unexpected)EOF", cut, err)
		}
	}
}

// TestLargeBatchSpill drives a batch bigger than the reader's bufio
// window through the spill path, and a corrupted large batch through its
// skip path.
func TestLargeBatchSpill(t *testing.T) {
	big := make([]*Record, 4)
	for i := range big {
		r := NewData(SubtypeAudio)
		r.Seq = uint64(i)
		payload := make([]byte, 3000)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		r.SetBytes(payload)
		big[i] = r
	}
	wire := AppendBatchWire(nil, big...)
	tail := NewData(SubtypeAudio)
	tail.Seq = 99
	tail.SetBytes([]byte{1, 2, 3})
	wire = AppendBatchWire(wire, tail)

	rd := NewReaderSize(bytes.NewReader(wire), 4096) // window << batch size
	for i, want := range big {
		got, err := rd.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		sameRecord(t, got, want, i)
	}
	got, err := rd.Read()
	if err != nil {
		t.Fatalf("tail read: %v", err)
	}
	sameRecord(t, got, tail, 4)

	// Corrupt the large batch: the spill path must drop it whole and
	// still decode the small batch behind it.
	wire[batchHdrSize+entryHdrSize+100] ^= 0x01
	rd = NewReaderSize(bytes.NewReader(wire), 4096)
	got, err = rd.Read()
	if err != nil {
		t.Fatalf("read after corrupt spill batch: %v", err)
	}
	sameRecord(t, got, tail, 0)
	if rd.CorruptBatches() != 1 {
		t.Fatalf("CorruptBatches = %d, want 1", rd.CorruptBatches())
	}
}

// TestWritevLargePayloads exercises the by-reference payload path end to
// end over a real TCP connection (net.Buffers takes the writev path only
// on a TCPConn) and proves the flush happens inside the same Write call,
// so the caller may recycle its payload immediately after.
func TestWritevLargePayloads(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type result struct {
		recs []*Record
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer conn.Close()
		rd := NewReader(conn)
		var rs []*Record
		for {
			r, err := rd.Read()
			if errors.Is(err, io.EOF) {
				resCh <- result{recs: rs}
				return
			}
			if err != nil {
				resCh <- result{err: err}
				return
			}
			rs = append(rs, r)
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	bw := NewBatchWriter(conn, DefaultBatchConfig())
	small := NewData(SubtypeAudio)
	small.Seq = 1
	small.SetBytes([]byte("small"))
	large := NewData(SubtypeAudio)
	large.Seq = 2
	payload := make([]byte, DefaultNoCopyMin*4)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	large.SetBytes(payload)
	wantLarge := append([]byte(nil), payload...)

	if err := bw.Write(small); err != nil {
		t.Fatal(err)
	}
	if err := bw.Write(large); err != nil { // forces the vectored flush
		t.Fatal(err)
	}
	if bw.Pending() != 0 {
		t.Fatalf("large payload did not force a flush: pending=%d", bw.Pending())
	}
	// The contract says the writer holds no reference now: clobber the
	// payload the caller still owns.
	for i := range payload {
		payload[i] = 0xEE
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	res := <-resCh
	if res.err != nil {
		t.Fatalf("receiver: %v", res.err)
	}
	if len(res.recs) != 2 {
		t.Fatalf("receiver decoded %d records, want 2", len(res.recs))
	}
	if !bytes.Equal(res.recs[1].Payload, wantLarge) {
		t.Fatal("large payload corrupted across the writev path")
	}
}

// TestMaterializeOnFlushError pins the ownership contract on the failure
// path: a failed flush of an ext-bearing batch must copy the payload into
// the writer's own buffer before returning, so the caller can recycle its
// record and a later retry still delivers the original bytes.
func TestMaterializeOnFlushError(t *testing.T) {
	bw := NewBatchWriter(errWriter{}, DefaultBatchConfig())
	r := NewData(SubtypeAudio)
	payload := make([]byte, DefaultNoCopyMin*2)
	for i := range payload {
		payload[i] = 0x5A
	}
	r.SetBytes(payload)
	want := append([]byte(nil), payload...)
	if err := bw.Write(r); err == nil {
		t.Fatal("flush to broken output succeeded")
	}
	if bw.Pending() != 1 {
		t.Fatalf("failed flush dropped the batch: pending=%d", bw.Pending())
	}
	for i := range payload {
		payload[i] = 0x00 // caller reuses its buffer
	}
	var good bytes.Buffer
	bw.SetOutput(&good)
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	rd := NewReader(bytes.NewReader(good.Bytes()))
	got, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, want) {
		t.Fatal("retried batch delivered the clobbered payload: ext not materialized on error")
	}
}

// TestAdaptiveBatchTrigger pins the adaptive policy: count-triggered
// flushes grow the trigger toward AdaptMax, mostly-empty flushes shrink
// it back to MaxRecords.
func TestAdaptiveBatchTrigger(t *testing.T) {
	cw := &countingWriter{}
	bw := NewBatchWriter(cw, BatchConfig{MaxRecords: 4, AdaptMax: 16})
	feed := func(n int) {
		for i := 0; i < n; i++ {
			if err := bw.Write(batchData(float64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(4) // full batch at trigger 4 -> grows to 8
	if cw.writes != 1 {
		t.Fatalf("writes = %d, want 1", cw.writes)
	}
	feed(8) // full batch at trigger 8 -> grows to 16
	if cw.writes != 2 {
		t.Fatalf("writes = %d, want 2 (trigger did not grow to 8)", cw.writes)
	}
	feed(16) // full batch at cap 16
	if cw.writes != 3 {
		t.Fatalf("writes = %d, want 3 (trigger did not grow to 16)", cw.writes)
	}
	// Idle stream: two records then an explicit flush (the delay-timer
	// shape) is <= trigger/4, so the trigger halves.
	feed(2)
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	feed(2)
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Trigger is now 4 again: four records must flush on their own.
	feed(4)
	if cw.writes != 6 {
		t.Fatalf("writes = %d, want 6 (trigger did not shrink back to 4)", cw.writes)
	}
	if got := len(readAll(t, cw.Bytes())); got != 36 {
		t.Fatalf("decoded %d records, want 36", got)
	}
}

// TestBatchCountCap proves a batch can never exceed the u16 count field:
// the writer forces a flush at MaxBatchRecords even when the configured
// triggers would allow more.
func TestBatchCountCap(t *testing.T) {
	bw := NewBatchWriter(io.Discard, BatchConfig{
		MaxRecords: MaxBatchRecords, AdaptMax: MaxBatchRecords, MaxBytes: 1 << 30,
	})
	r := NewData(SubtypeAudio)
	r.SetBytes([]byte{1})
	for i := 0; i < MaxBatchRecords-1; i++ {
		if err := bw.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if bw.ShouldFlush() {
		t.Fatal("flush forced before the count cap")
	}
	if err := bw.Add(r); err != nil {
		t.Fatal(err)
	}
	if !bw.ShouldFlush() {
		t.Fatal("count at MaxBatchRecords did not force a flush")
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestReaderResetRecyclesPend ensures a Reset mid-batch returns the
// undelivered pooled records to the pool rather than leaking them.
func TestReaderResetRecyclesPend(t *testing.T) {
	wire := AppendBatchWire(nil, v2TestRecords(5)...)
	rd := NewReader(bytes.NewReader(wire))
	rd.SetPooled(true)
	first, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	Release(first)
	rd.Reset(bytes.NewReader(wire)) // 4 records still pending
	n := 0
	for {
		r, err := rd.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		Release(r)
	}
	if n != 5 {
		t.Fatalf("decoded %d records after Reset, want 5", n)
	}
}
