package record

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// countingWriter counts Write calls so tests can observe batching.
type countingWriter struct {
	bytes.Buffer
	writes int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.writes++
	return c.Buffer.Write(p)
}

// errWriter fails every write.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("sink broken") }

func batchData(v float64) *Record {
	r := NewData(SubtypeAudio)
	r.SetFloat64s([]float64{v})
	return r
}

// readAll decodes every record from b.
func readAll(t *testing.T, b []byte) []*Record {
	t.Helper()
	rd := NewReader(bytes.NewReader(b))
	var out []*Record
	for {
		rec, err := rd.Read()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		out = append(out, rec)
	}
}

func TestBatchWriterFlushOnCount(t *testing.T) {
	cw := &countingWriter{}
	bw := NewBatchWriter(cw, BatchConfig{MaxRecords: 4})
	for i := 0; i < 10; i++ {
		if err := bw.Write(batchData(float64(i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if cw.writes != 2 {
		t.Errorf("10 records at batch 4: %d writes, want 2 full batches", cw.writes)
	}
	if bw.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", bw.Pending())
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 3 {
		t.Errorf("writes after explicit flush = %d, want 3", cw.writes)
	}
	if got := len(readAll(t, cw.Bytes())); got != 10 {
		t.Errorf("decoded %d records, want 10", got)
	}
	if bw.Count() != 10 || bw.Batches() != 3 {
		t.Errorf("Count=%d Batches=%d, want 10/3", bw.Count(), bw.Batches())
	}
	if bw.BytesWritten() != uint64(cw.Len()) {
		t.Errorf("BytesWritten=%d, want %d", bw.BytesWritten(), cw.Len())
	}
}

func TestBatchWriterFlushOnBoundaries(t *testing.T) {
	cw := &countingWriter{}
	bw := NewBatchWriter(cw, BatchConfig{MaxRecords: 100, FlushOnClose: true, FlushOnControl: true})
	if err := bw.Write(NewOpenScope(ScopeClip, 0)); err != nil {
		t.Fatal(err)
	}
	if err := bw.Write(batchData(1)); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 0 {
		t.Fatalf("premature flush after %d records", bw.Pending())
	}
	// A nested close does not flush; only depth 0 is a delivery boundary.
	inner := NewCloseScope(ScopeEnsemble, 1)
	if err := bw.Write(inner); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 0 {
		t.Error("nested close flushed the batch")
	}
	if err := bw.Write(NewCloseScope(ScopeClip, 0)); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 1 {
		t.Errorf("top-level close: %d writes, want 1", cw.writes)
	}
	ctl := &Record{Kind: KindControl}
	if err := bw.Write(ctl); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 2 {
		t.Errorf("control record: %d writes, want 2", cw.writes)
	}
}

func TestBatchWriterFlushOnBytesAndAge(t *testing.T) {
	cw := &countingWriter{}
	bw := NewBatchWriter(cw, BatchConfig{MaxRecords: 1000, MaxBytes: 64})
	big := NewData(SubtypeAudio)
	big.SetBytes(make([]byte, 128))
	if err := bw.Write(big); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 1 {
		t.Errorf("oversize batch not flushed on MaxBytes (writes=%d)", cw.writes)
	}

	bw2 := NewBatchWriter(cw, BatchConfig{MaxRecords: 1000, MaxDelay: time.Millisecond})
	if err := bw2.Add(batchData(1)); err != nil {
		t.Fatal(err)
	}
	if bw2.ShouldFlush() {
		t.Error("fresh record already stale")
	}
	time.Sleep(3 * time.Millisecond)
	if !bw2.ShouldFlush() {
		t.Error("record older than MaxDelay not flagged for flush")
	}
	if bw2.Age() < time.Millisecond {
		t.Errorf("Age = %v", bw2.Age())
	}
}

// TestBatchWriterRetargetKeepsPending is the failover contract: a flush
// against a broken output keeps the batch, and SetOutput lets the same
// batch land on a replacement — the mechanism StreamOut uses to carry at
// most one bounded batch across a redirect.
func TestBatchWriterRetargetKeepsPending(t *testing.T) {
	bw := NewBatchWriter(errWriter{}, BatchConfig{MaxRecords: 8})
	for i := 0; i < 3; i++ {
		if err := bw.Add(batchData(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err == nil {
		t.Fatal("flush to broken output succeeded")
	}
	if bw.Pending() != 3 {
		t.Fatalf("failed flush dropped the batch: pending=%d", bw.Pending())
	}
	var good bytes.Buffer
	bw.SetOutput(&good)
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(readAll(t, good.Bytes())); got != 3 {
		t.Errorf("replayed batch decoded to %d records, want 3", got)
	}
	if bw.Pending() != 0 {
		t.Errorf("pending after successful flush = %d", bw.Pending())
	}
}

func TestBatchWriterNoOutput(t *testing.T) {
	bw := NewBatchWriter(nil, DefaultBatchConfig())
	if err := bw.Add(batchData(1)); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); !errors.Is(err, ErrNoOutput) {
		t.Fatalf("flush without output = %v, want ErrNoOutput", err)
	}
	if n := bw.Discard(); n != 1 {
		t.Errorf("Discard = %d, want 1", n)
	}
	if err := bw.Flush(); err != nil {
		t.Errorf("empty flush after discard: %v", err)
	}
}

func TestBatchWriterRejectsInvalid(t *testing.T) {
	bw := NewBatchWriter(&bytes.Buffer{}, DefaultBatchConfig())
	if err := bw.Add(&Record{}); err == nil {
		t.Error("invalid kind accepted")
	}
	huge := NewData(0)
	huge.PayloadType = PayloadBytes
	huge.Payload = make([]byte, MaxPayload+1)
	if err := bw.Add(huge); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize payload: %v", err)
	}
	if bw.Pending() != 0 {
		t.Errorf("rejected records buffered: pending=%d", bw.Pending())
	}
}

// TestBatchInteropWithPlainReader proves the wire format is unchanged: a
// stream produced by a mix of batched and per-record writers decodes with
// the ordinary Reader, records in order.
func TestBatchInteropWithPlainReader(t *testing.T) {
	var buf bytes.Buffer
	plain := NewWriter(&buf)
	if err := plain.Write(batchData(0)); err != nil {
		t.Fatal(err)
	}
	bw := NewBatchWriter(&buf, BatchConfig{MaxRecords: 3})
	for i := 1; i <= 4; i++ {
		if err := bw.Write(batchData(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := readAll(t, buf.Bytes())
	if len(recs) != 5 {
		t.Fatalf("decoded %d records, want 5", len(recs))
	}
	for i, r := range recs {
		v, err := r.Float64s()
		if err != nil || len(v) != 1 || v[0] != float64(i) {
			t.Errorf("record %d = %v (%v), want [%d]", i, v, err, i)
		}
	}
}

func TestPerRecordConfigFlushesEveryWrite(t *testing.T) {
	cw := &countingWriter{}
	bw := NewBatchWriter(cw, PerRecordConfig())
	for i := 0; i < 3; i++ {
		if err := bw.Write(batchData(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if cw.writes != 3 {
		t.Errorf("per-record config issued %d writes for 3 records", cw.writes)
	}
}

// failingThenOKWriter fails its first n Writes, then succeeds — the shape
// of a streamout whose downstream moved mid-batch.
type failingThenOKWriter struct {
	fails  int
	writes int
	buf    bytes.Buffer
}

func (f *failingThenOKWriter) Write(p []byte) (int, error) {
	if f.fails > 0 {
		f.fails--
		return 0, errors.New("transient")
	}
	f.writes++
	return f.buf.Write(p)
}

// TestBatchWriterControlInterleaving covers forced flushes interleaved
// with control records: a control record added behind buffered data must
// flush the whole batch — data first, control last, in order — and a
// failed forced flush must keep the batch (control included) intact for
// the retry, so a control record can never be reordered past data or
// lost to a transient output error.
func TestBatchWriterControlInterleaving(t *testing.T) {
	out := &failingThenOKWriter{fails: 1}
	bw := NewBatchWriter(out, BatchConfig{MaxRecords: 100, FlushOnControl: true})
	for i := 0; i < 3; i++ {
		if err := bw.Write(batchData(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if out.writes != 0 {
		t.Fatalf("data-only batch flushed early: %d writes", out.writes)
	}
	ctl := &Record{Kind: KindControl}
	if err := bw.Add(ctl); err != nil {
		t.Fatal(err)
	}
	if !bw.ShouldFlush() {
		t.Fatal("control record did not force a flush")
	}
	// First flush attempt hits the transient failure: the batch must
	// survive untouched.
	if err := bw.Flush(); err == nil {
		t.Fatal("flush against failing output succeeded")
	}
	if bw.Pending() != 4 {
		t.Fatalf("failed flush dropped records: pending=%d, want 4", bw.Pending())
	}
	if !bw.ShouldFlush() {
		t.Fatal("force flag lost across a failed flush")
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if out.writes != 1 {
		t.Fatalf("retried flush issued %d writes, want 1", out.writes)
	}
	recs := readAll(t, out.buf.Bytes())
	if len(recs) != 4 {
		t.Fatalf("decoded %d records, want 4", len(recs))
	}
	for i, r := range recs[:3] {
		if r.Kind != KindData {
			t.Errorf("record %d: %v, want Data", i, r.Kind)
		}
	}
	if recs[3].Kind != KindControl {
		t.Errorf("last record %v, want Control — control must not pass data", recs[3].Kind)
	}
	// More data after the forced flush starts a fresh batch with the
	// force flag cleared.
	if err := bw.Write(batchData(9)); err != nil {
		t.Fatal(err)
	}
	if bw.ShouldFlush() {
		t.Error("force flag leaked into the next batch")
	}
	// With FlushOnControl disabled a control record buffers like data.
	quiet := NewBatchWriter(&bytes.Buffer{}, BatchConfig{MaxRecords: 100})
	if err := quiet.Add(&Record{Kind: KindControl}); err != nil {
		t.Fatal(err)
	}
	if quiet.ShouldFlush() {
		t.Error("control forced a flush with FlushOnControl disabled")
	}
}
