package record

import "fmt"

// Latency trace probes.
//
// A probe is a KindControl record carrying its origin wall-clock time
// (UnixNano, little-endian uint64 payload). A source injects one every
// probe interval; every component in between treats it as an ordinary
// control record — operators pass it through, the splitter tags it, the
// merger dedups it — and the terminal unit's tracer reads the origin
// back out to measure true end-to-end pipeline latency. Probes are rare
// (a few per second at most), so the allocation of injecting one never
// shows on the per-record hot path.
//
// Origin times only compare meaningfully against the clock of the
// observing process; across machines the measurement includes clock
// skew, which is the usual distributed-tracing caveat, not a bug in the
// probe.

// NewTraceProbe returns a trace probe originating at originNanos
// (UnixNano). The probe carries no scope structure, so it is safe to
// inject at any stream position.
func NewTraceProbe(originNanos int64) *Record {
	r := GetRecord()
	FillTraceProbe(r, originNanos)
	return r
}

// FillTraceProbe turns r into a trace probe in place (for callers that
// manage their own pooling).
func FillTraceProbe(r *Record, originNanos int64) {
	r.Kind = KindControl
	r.Subtype = SubtypeTraceProbe
	r.PayloadType = PayloadBytes
	putU64(r.ensurePayload(8), uint64(originNanos))
}

// IsTraceProbe reports whether r is a latency trace probe.
func IsTraceProbe(r *Record) bool {
	return r != nil && r.Kind == KindControl && r.Subtype == SubtypeTraceProbe
}

// TraceOrigin returns the probe's origin timestamp (UnixNano).
func TraceOrigin(r *Record) (int64, error) {
	if !IsTraceProbe(r) {
		return 0, fmt.Errorf("record: not a trace probe: %s", r)
	}
	if len(r.Payload) < 8 {
		return 0, fmt.Errorf("%w: trace probe payload %d bytes, want 8", ErrShortPayload, len(r.Payload))
	}
	return int64(getU64(r.Payload)), nil
}
