package record

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleRecords() []*Record {
	open := NewOpenScope(ScopeClip, 0)
	open.SetContext(map[string]string{CtxSampleRate: "24576", CtxClipID: "c1"})
	data := NewData(SubtypeAudio)
	data.SetFloat64s([]float64{0.5, -0.25, 1.0})
	data.Seq = 7
	data.SourceID = 3
	data.Scope = 1
	data.ScopeType = ScopeClip
	spec := NewData(SubtypeSpectrum)
	spec.SetComplex128s([]complex128{1 + 2i, -3i})
	pcm := NewData(SubtypeAudio)
	pcm.SetPCM16([]int16{100, -100, 32767})
	empty := NewCloseScope(ScopeClip, 0)
	ctl := &Record{Kind: KindControl, Subtype: 9}
	return []*Record{open, data, spec, pcm, empty, ctl}
}

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := sampleRecords()
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write(%s): %v", r, err)
		}
	}
	if w.Count() != uint64(len(recs)) {
		t.Errorf("writer count = %d, want %d", w.Count(), len(recs))
	}
	r := NewReader(&buf)
	for i, want := range recs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("Read record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("record %d mismatch:\n got %#v\nwant %#v", i, got, want)
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF at end of stream, got %v", err)
	}
	if r.Count() != uint64(len(recs)) {
		t.Errorf("reader count = %d, want %d", r.Count(), len(recs))
	}
}

func TestWireSize(t *testing.T) {
	for _, rec := range sampleRecords() {
		enc := AppendWire(nil, rec)
		if len(enc) != WireSize(rec) {
			t.Errorf("WireSize(%s) = %d, encoded %d bytes", rec, WireSize(rec), len(enc))
		}
	}
}

func TestWriteInvalidKind(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(&Record{}); err == nil {
		t.Error("writing a zero-kind record should fail")
	}
}

func TestWriteTooLarge(t *testing.T) {
	w := NewWriter(io.Discard)
	r := NewData(0)
	r.PayloadType = PayloadBytes
	r.Payload = make([]byte, MaxPayload+1)
	if err := w.Write(r); !errors.Is(err, ErrTooLarge) {
		t.Errorf("expected ErrTooLarge, got %v", err)
	}
}

func TestReadTruncatedMidRecord(t *testing.T) {
	rec := NewData(SubtypeAudio)
	rec.SetFloat64s([]float64{1, 2, 3, 4})
	enc := AppendWire(nil, rec)
	for _, cut := range []int{5, headerSize - 1, headerSize + 3, len(enc) - 1} {
		r := NewReader(bytes.NewReader(enc[:cut]))
		if _, err := r.Read(); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut=%d: expected ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

func TestReadCorruptPayloadResync(t *testing.T) {
	// Two records; corrupt a payload byte in the first. The non-strict
	// reader should skip to the second record.
	r1 := NewData(SubtypeAudio)
	r1.SetFloat64s([]float64{1, 2, 3})
	r2 := NewData(SubtypeAudio)
	r2.SetFloat64s([]float64{9, 8})
	enc := AppendWire(nil, r1)
	enc[headerSize+2] ^= 0xFF
	enc = AppendWire(enc, r2)

	rd := NewReader(bytes.NewReader(enc))
	got, err := rd.Read()
	if err != nil {
		t.Fatalf("Read after corruption: %v", err)
	}
	if !reflect.DeepEqual(got, r2) {
		t.Errorf("resync read wrong record: %v", got)
	}
}

func TestReadCorruptStrict(t *testing.T) {
	r1 := NewData(SubtypeAudio)
	r1.SetFloat64s([]float64{1})
	enc := AppendWire(nil, r1)
	enc[headerSize] ^= 0x01
	rd := NewReader(bytes.NewReader(enc))
	rd.SetStrict(true)
	if _, err := rd.Read(); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("expected ErrBadChecksum in strict mode, got %v", err)
	}
}

func TestReadGarbagePrefix(t *testing.T) {
	rec := NewData(SubtypeAudio)
	rec.SetPCM16([]int16{42})
	garbage := []byte("this is not a record at all.....")
	enc := append(append([]byte{}, garbage...), AppendWire(nil, rec)...)
	rd := NewReader(bytes.NewReader(enc))
	got, err := rd.Read()
	if err != nil {
		t.Fatalf("Read with garbage prefix: %v", err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("got %v, want %v", got, rec)
	}
}

func TestReadOversizedLength(t *testing.T) {
	rec := NewData(0)
	enc := AppendWire(nil, rec)
	// Force the length field beyond MaxPayload.
	enc[25] = 0xFF
	enc[26] = 0xFF
	enc[27] = 0xFF
	enc[28] = 0xFF
	rd := NewReader(bytes.NewReader(enc))
	rd.SetStrict(true)
	if _, err := rd.Read(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("expected ErrTooLarge, got %v", err)
	}
}

func TestReadEmptyStream(t *testing.T) {
	rd := NewReader(bytes.NewReader(nil))
	if _, err := rd.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF on empty stream, got %v", err)
	}
}

// Property: any record with random header fields and payload bytes survives
// a wire round trip bit-exactly.
func TestQuickWireRoundTrip(t *testing.T) {
	f := func(kindSel uint8, subtype, scope, scopeType uint16, seq uint64, src uint32, payload []byte) bool {
		rec := &Record{
			Kind:        Kind(kindSel%5) + KindData,
			Subtype:     subtype,
			Scope:       scope,
			ScopeType:   ScopeType(scopeType),
			Seq:         seq,
			SourceID:    src,
			PayloadType: PayloadBytes,
			Payload:     payload,
		}
		if len(payload) == 0 {
			rec.Payload = nil
			rec.PayloadType = PayloadNone
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(rec); err != nil {
			return false
		}
		got, err := NewReader(&buf).Read()
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, rec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a stream of N records with one corrupted byte anywhere loses at
// most the affected record(s); the reader never loops forever or panics.
func TestQuickCorruptionRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var enc []byte
		const n = 5
		for i := 0; i < n; i++ {
			rec := NewData(uint16(i))
			rec.SetFloat64s([]float64{float64(i), float64(i) * 2})
			enc = AppendWire(enc, rec)
		}
		flip := rng.Intn(len(enc))
		enc[flip] ^= byte(1 + rng.Intn(255))
		rd := NewReader(bytes.NewReader(enc))
		read := 0
		for {
			_, err := rd.Read()
			if err != nil {
				break
			}
			read++
			if read > n {
				t.Fatal("reader produced more records than written")
			}
		}
		if read < n-2 {
			t.Errorf("trial %d: lost too many records: read %d of %d (flip at %d)", trial, read, n, flip)
		}
	}
}

func BenchmarkWireEncode(b *testing.B) {
	rec := NewData(SubtypeAudio)
	samples := make([]float64, 1024)
	for i := range samples {
		samples[i] = float64(i)
	}
	rec.SetFloat64s(samples)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendWire(buf[:0], rec)
	}
}

func BenchmarkWireDecode(b *testing.B) {
	rec := NewData(SubtypeAudio)
	samples := make([]float64, 1024)
	rec.SetFloat64s(samples)
	enc := AppendWire(nil, rec)
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd := NewReader(bytes.NewReader(enc))
		if _, err := rd.Read(); err != nil {
			b.Fatal(err)
		}
	}
}
