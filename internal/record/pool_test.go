package record

import (
	"bytes"
	"testing"
)

// poolSample builds a data record with a recognizable payload.
func poolSample(seq uint64, fill byte, n int) *Record {
	r := NewData(SubtypeAudio)
	r.Seq = seq
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	r.SetBytes(b)
	return r
}

func TestPoolRoundTrip(t *testing.T) {
	r := GetRecord()
	r.Kind = KindData
	r.Seq = 42
	r.SetBytes([]byte("hello"))
	Release(r)
	got := GetRecord()
	// Whether or not the pool handed back the same object, the record
	// must be header-zeroed with an empty payload.
	if got.Kind != 0 || got.Seq != 0 || got.PayloadType != 0 || len(got.Payload) != 0 {
		t.Fatalf("pooled record not reset: %+v", got)
	}
	Release(got)
	Release(nil) // nil-safe
}

// TestPooledReaderAliasing is the ownership-contract regression test: a
// record decoded from a pooled reader and still held by its owner must
// not be corrupted when other records cycle through the pool — decode →
// release → decode must never alias a held record's storage.
func TestPooledReaderAliasing(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.Write(poolSample(uint64(i), byte('a'+i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	rd := NewReader(&buf)
	rd.SetPooled(true)

	r1, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	held := append([]byte(nil), r1.Payload...) // expected contents of r1

	r2, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	Release(r2) // r2's storage goes back to the pool

	r3, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	// r3 may reuse r2's storage, but never r1's: r1 is still owned here.
	if r1.Seq != 0 || !bytes.Equal(r1.Payload, held) {
		t.Fatalf("held record corrupted after pool cycling: seq=%d payload=%q want %q",
			r1.Seq, r1.Payload, held)
	}
	if r3.Seq != 2 || r3.Payload[0] != 'c' {
		t.Fatalf("third record wrong: seq=%d payload[0]=%q", r3.Seq, r3.Payload[0])
	}
	Release(r1)
	Release(r3)
}

func TestGetCopyIndependent(t *testing.T) {
	src := poolSample(7, 'x', 32)
	c := GetCopy(src)
	if c == src {
		t.Fatal("GetCopy returned the source")
	}
	if c.Seq != 7 || !bytes.Equal(c.Payload, src.Payload) {
		t.Fatalf("copy differs: %+v vs %+v", c, src)
	}
	// Mutating the copy must not touch the source.
	c.Payload[0] = 'y'
	if src.Payload[0] != 'x' {
		t.Fatal("copy aliases source payload")
	}
	Release(c)
}

func TestCloneIntoReusesCapacity(t *testing.T) {
	src := poolSample(9, 'z', 48)
	dst := &Record{Payload: make([]byte, 0, 128)}
	keep := &dst.Payload[:1][0]
	src.CloneInto(dst)
	if &dst.Payload[0] != keep {
		t.Fatal("CloneInto reallocated despite sufficient capacity")
	}
	if dst.Seq != 9 || !bytes.Equal(dst.Payload, src.Payload) {
		t.Fatalf("CloneInto mismatch: %+v", dst)
	}
	// nil payload propagates as nil.
	empty := &Record{Kind: KindControl}
	empty.CloneInto(dst)
	if dst.Payload != nil {
		t.Fatalf("CloneInto of nil payload gave %v", dst.Payload)
	}
}

func TestSettersReuseCapacity(t *testing.T) {
	r := &Record{}
	r.SetFloat64s([]float64{1, 2, 3, 4})
	p0 := &r.Payload[0]
	allocs := testing.AllocsPerRun(100, func() {
		r.SetFloat64s([]float64{5, 6, 7})
	})
	if allocs != 0 {
		t.Fatalf("SetFloat64s with capacity allocated %.1f/op", allocs)
	}
	if &r.Payload[0] != p0 {
		t.Fatal("SetFloat64s reallocated despite capacity")
	}
	v, err := r.Float64s()
	if err != nil || len(v) != 3 || v[0] != 5 {
		t.Fatalf("decode after reuse: %v %v", v, err)
	}
}

func TestAppendDecodersZeroAlloc(t *testing.T) {
	r := &Record{}
	r.SetFloat64s([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	buf := make([]float64, 0, 16)
	allocs := testing.AllocsPerRun(100, func() {
		v, err := r.AppendFloat64s(buf[:0])
		if err != nil || len(v) != 8 {
			t.Fatalf("decode: %v %v", v, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendFloat64s into scratch allocated %.1f/op", allocs)
	}
}

// TestPooledDecodeAllocs pins the steady-state decode cost: reading a
// batch stream through a pooled reader and releasing each record must
// not allocate per record (sync.Pool may be drained by GC mid-run, so a
// small average is tolerated; a per-record regression shows up as ≥1).
func TestPooledDecodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under -race; pooled paths allocate by design")
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 64
	for i := 0; i < n; i++ {
		if err := w.Write(poolSample(uint64(i), byte(i), 256)); err != nil {
			t.Fatal(err)
		}
	}
	stream := buf.Bytes()
	rd := NewReader(bytes.NewReader(stream))
	rd.SetPooled(true)
	// Warm the pool and the reader's buffer.
	allocs := testing.AllocsPerRun(20, func() {
		rd.Reset(bytes.NewReader(stream))
		for i := 0; i < n; i++ {
			rec, err := rd.Read()
			if err != nil {
				t.Fatal(err)
			}
			Release(rec)
		}
	})
	if perRecord := allocs / n; perRecord > 0.2 {
		t.Fatalf("pooled decode allocates %.2f/record (%.0f/run), want ~0", perRecord, allocs)
	}
}
