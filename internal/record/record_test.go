package record

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindData, "Data"},
		{KindOpenScope, "OpenScope"},
		{KindCloseScope, "CloseScope"},
		{KindBadCloseScope, "BadCloseScope"},
		{KindControl, "Control"},
		{Kind(99), "Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestKindValid(t *testing.T) {
	for k := KindData; k <= KindControl; k++ {
		if !k.Valid() {
			t.Errorf("Kind %s should be valid", k)
		}
	}
	if Kind(0).Valid() || Kind(6).Valid() {
		t.Error("out-of-range kinds should be invalid")
	}
}

func TestKindIsClose(t *testing.T) {
	if !KindCloseScope.IsClose() || !KindBadCloseScope.IsClose() {
		t.Error("close kinds must report IsClose")
	}
	if KindData.IsClose() || KindOpenScope.IsClose() {
		t.Error("non-close kinds must not report IsClose")
	}
}

func TestFloat64sRoundTrip(t *testing.T) {
	in := []float64{0, 1, -1, math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64, math.Inf(1), math.Inf(-1)}
	r := NewData(SubtypeAudio)
	r.SetFloat64s(in)
	out, err := r.Float64s()
	if err != nil {
		t.Fatalf("Float64s: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch: %v != %v", in, out)
	}
}

func TestFloat64sNaN(t *testing.T) {
	r := NewData(0)
	r.SetFloat64s([]float64{math.NaN()})
	out, err := r.Float64s()
	if err != nil {
		t.Fatalf("Float64s: %v", err)
	}
	if !math.IsNaN(out[0]) {
		t.Errorf("NaN not preserved: got %v", out[0])
	}
}

func TestFloat64sTypeMismatch(t *testing.T) {
	r := NewData(0)
	r.SetPCM16([]int16{1, 2, 3})
	if _, err := r.Float64s(); err == nil {
		t.Error("expected payload type mismatch error")
	}
}

func TestFloat64sTruncated(t *testing.T) {
	r := NewData(0)
	r.SetFloat64s([]float64{1, 2})
	r.Payload = r.Payload[:11] // not a multiple of 8
	if _, err := r.Float64s(); err == nil {
		t.Error("expected truncation error")
	}
}

func TestComplex128sRoundTrip(t *testing.T) {
	in := []complex128{0, 1 + 2i, -3.5 - 0.25i, complex(math.Pi, -math.E)}
	r := NewData(SubtypeSpectrum)
	r.SetComplex128s(in)
	out, err := r.Complex128s()
	if err != nil {
		t.Fatalf("Complex128s: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch: %v != %v", in, out)
	}
}

func TestComplex128sTypeMismatch(t *testing.T) {
	r := NewData(0)
	if _, err := r.Complex128s(); err == nil {
		t.Error("expected error for empty payload type")
	}
}

func TestPCM16RoundTrip(t *testing.T) {
	in := []int16{0, 1, -1, 32767, -32768, 12345, -12345}
	r := NewData(SubtypeAudio)
	r.SetPCM16(in)
	out, err := r.PCM16()
	if err != nil {
		t.Fatalf("PCM16: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch: %v != %v", in, out)
	}
}

func TestPCM16Truncated(t *testing.T) {
	r := NewData(0)
	r.SetPCM16([]int16{1})
	r.Payload = r.Payload[:1]
	if _, err := r.PCM16(); err == nil {
		t.Error("expected truncation error")
	}
}

func TestContextRoundTrip(t *testing.T) {
	in := map[string]string{
		CtxSampleRate: "24576",
		CtxChannels:   "1",
		CtxStation:    "kbs-07",
		"empty":       "",
		"with:colon":  "a:b:c",
	}
	r := NewOpenScope(ScopeClip, 0)
	r.SetContext(in)
	out, err := r.Context()
	if err != nil {
		t.Fatalf("Context: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch: %v != %v", in, out)
	}
}

func TestContextDeterministic(t *testing.T) {
	ctx := map[string]string{"b": "2", "a": "1", "c": "3"}
	r1 := NewOpenScope(ScopeClip, 0)
	r1.SetContext(ctx)
	r2 := NewOpenScope(ScopeClip, 0)
	r2.SetContext(ctx)
	if string(r1.Payload) != string(r2.Payload) {
		t.Error("context encoding must be deterministic")
	}
}

func TestContextValueHelpers(t *testing.T) {
	r := NewOpenScope(ScopeClip, 0)
	r.SetContext(map[string]string{CtxSampleRate: "24576", "bad": "xyz"})
	if v := r.ContextValue(CtxSampleRate); v != "24576" {
		t.Errorf("ContextValue = %q, want 24576", v)
	}
	if v := r.ContextValue("missing"); v != "" {
		t.Errorf("missing key should return empty, got %q", v)
	}
	f, ok := r.ContextFloat(CtxSampleRate)
	if !ok || f != 24576 {
		t.Errorf("ContextFloat = %v, %v", f, ok)
	}
	if _, ok := r.ContextFloat("bad"); ok {
		t.Error("non-numeric value should not parse")
	}
	if _, ok := r.ContextFloat("missing"); ok {
		t.Error("missing key should not parse")
	}
}

func TestContextCorrupt(t *testing.T) {
	r := &Record{Kind: KindOpenScope, PayloadType: PayloadContext}
	for _, payload := range []string{"x", "5:ab", "-1:a1:b", "notanum:a"} {
		r.Payload = []byte(payload)
		if _, err := r.Context(); err == nil {
			t.Errorf("payload %q should fail to decode", payload)
		}
	}
}

func TestClone(t *testing.T) {
	r := NewData(SubtypeAudio)
	r.SetFloat64s([]float64{1, 2, 3})
	r.Seq = 42
	c := r.Clone()
	if !reflect.DeepEqual(r, c) {
		t.Fatal("clone differs from original")
	}
	c.Payload[0] = ^c.Payload[0]
	orig, _ := r.Float64s()
	if orig[0] != 1 {
		t.Error("mutating clone payload affected the original")
	}
}

func TestCloneNilPayload(t *testing.T) {
	r := NewCloseScope(ScopeClip, 0)
	c := r.Clone()
	if c.Payload != nil {
		t.Error("clone of nil payload should stay nil")
	}
}

func TestRecordString(t *testing.T) {
	r := NewData(SubtypeAudio)
	r.SetFloat64s([]float64{1})
	s := r.String()
	if s == "" {
		t.Error("String should not be empty")
	}
}

func TestScopeTypeString(t *testing.T) {
	names := map[ScopeType]string{
		ScopeNone:     "none",
		ScopeSession:  "session",
		ScopeClip:     "clip",
		ScopeEnsemble: "ensemble",
		ScopeBlock:    "block",
		ScopeUser:     "scope(128)",
	}
	for st, want := range names {
		if got := st.String(); got != want {
			t.Errorf("ScopeType(%d).String() = %q, want %q", st, got, want)
		}
	}
}

func TestPayloadTypeString(t *testing.T) {
	for p := PayloadNone; p <= PayloadContext; p++ {
		if p.String() == "" {
			t.Errorf("PayloadType %d has empty name", p)
		}
	}
	if PayloadType(200).String() != "payload(200)" {
		t.Error("unknown payload type rendering")
	}
}

// Property: float64 payload round-trip is the identity for any vector.
func TestQuickFloat64sRoundTrip(t *testing.T) {
	f := func(v []float64) bool {
		r := NewData(0)
		r.SetFloat64s(v)
		out, err := r.Float64s()
		if err != nil {
			return false
		}
		if len(out) != len(v) {
			return false
		}
		for i := range v {
			if math.Float64bits(v[i]) != math.Float64bits(out[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PCM16 payload round-trip is the identity.
func TestQuickPCM16RoundTrip(t *testing.T) {
	f := func(v []int16) bool {
		r := NewData(0)
		r.SetPCM16(v)
		out, err := r.PCM16()
		if err != nil {
			return false
		}
		return reflect.DeepEqual(out, v) || (len(v) == 0 && len(out) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: context round-trip is the identity for maps with modest keys.
func TestQuickContextRoundTrip(t *testing.T) {
	f := func(m map[string]string) bool {
		r := NewOpenScope(ScopeClip, 0)
		r.SetContext(m)
		out, err := r.Context()
		if err != nil {
			return false
		}
		if len(m) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(m, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
