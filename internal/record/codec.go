package record

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire format v1 — one frame per record (all integers little-endian):
//
//	magic      uint32  'D','R','V','1'
//	kind       uint8
//	subtype    uint16
//	scope      uint16
//	scopeType  uint16
//	seq        uint64
//	sourceID   uint32
//	payloadTyp uint16
//	payloadLen uint32
//	hdrCRC     uint16  (low 16 bits of IEEE CRC-32 over kind..payloadLen)
//	payload    [payloadLen]byte
//	crc32      uint32  (IEEE, over everything from kind through payload)
//
// The magic word lets a reader resynchronize on a byte stream after a
// partial write; the header CRC lets the reader reject a corrupted length
// field before committing to consume payload bytes; the trailing CRC
// detects payload corruption and false magic matches.
//
// Wire format v2 — one frame per batch. v1 pays two software CRC-32/IEEE
// passes and 10 bytes of framing (magic + header CRC + trailer) per
// record; v2 amortizes framing over the whole batch and checksums it in a
// single CRC-32C (Castagnoli) pass, which Go accelerates with the SSE4.2 /
// ARMv8 CRC instructions:
//
//	magic    uint32  'D','R','V','2'
//	count    uint16  number of records in the batch (>= 1)
//	bodyLen  uint32  encoded size of all entries, headers + payloads
//	hdrCRC   uint16  (low 16 bits of CRC-32C over count..bodyLen)
//	body     [bodyLen]byte   — count entries, each:
//	    kind       uint8
//	    subtype    uint16
//	    scope      uint16
//	    scopeType  uint16
//	    seq        uint64
//	    sourceID   uint32
//	    payloadTyp uint16
//	    payloadLen uint32
//	    payload    [payloadLen]byte
//	batchCRC uint32  (CRC-32C over everything from count through body)
//
// The entry header is the v1 header minus magic and header CRC — the
// field order and widths are identical, so both framings share the
// encode/decode helpers. The batch header CRC guards count/bodyLen before
// the reader commits to consuming bodyLen bytes; the trailing CRC covers
// the whole batch, so corruption anywhere drops exactly that batch (the
// reader counts it and re-syncs on the next magic word — see Read). The
// two framings are self-identifying by magic and may be interleaved on
// one stream; readers accept both, so v1 writers and v2 readers (and vice
// versa) interoperate with no flag day.

const (
	wireMagic   = uint32('D') | uint32('R')<<8 | uint32('V')<<16 | uint32('1')<<24
	wireMagicV2 = uint32('D') | uint32('R')<<8 | uint32('V')<<16 | uint32('2')<<24
	hdrCRCOff   = 4 + 1 + 2 + 2 + 2 + 8 + 4 + 2 + 4
	headerSize  = hdrCRCOff + 2
	trailerSize = 4
	// entryHdrSize is the per-record header inside a v2 batch body: the v1
	// header fields without the magic word and header CRC.
	entryHdrSize = 1 + 2 + 2 + 2 + 8 + 4 + 2 + 4
	// batchHdrSize is the v2 batch header: magic, count, bodyLen, hdrCRC.
	batchHdrSize = 4 + 2 + 4 + 2
	// batchTrailerSize is the v2 whole-batch CRC-32C.
	batchTrailerSize = 4
	// MaxBatchRecords is the largest count a v2 batch frame can carry
	// (the count field is a uint16).
	MaxBatchRecords = 1<<16 - 1
	// MaxPayload bounds the payload size accepted by the decoder. It
	// protects readers from corrupt length fields; 64 MiB is far above any
	// record produced by the acoustic pipeline (a 30 s clip is ~1.5 MiB).
	MaxPayload = 64 << 20
	// MaxBatchBody bounds the v2 batch body accepted by the decoder, for
	// the same reason MaxPayload bounds a record: a corrupt (but
	// header-CRC-valid) length field must not commit the reader to
	// consuming gigabytes. Writers flush on BatchConfig.MaxBytes long
	// before this.
	MaxBatchBody = 256 << 20
)

// castagnoli is the CRC-32C table; crc32.Checksum with it dispatches to
// the hardware CRC32 instruction on amd64 (SSE4.2) and arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Codec errors.
var (
	ErrBadMagic    = errors.New("record: bad magic word")
	ErrBadChecksum = errors.New("record: checksum mismatch")
	ErrTooLarge    = errors.New("record: payload exceeds MaxPayload")
	ErrBadBatch    = errors.New("record: malformed batch frame")
)

// errBatchSkipped is an internal sentinel: a v2 batch failed its CRC (or
// was structurally inconsistent) and has been consumed in full, so the
// non-strict Read loop should simply try the next frame — no byte-wise
// resync needed, the stream is already positioned at the frame boundary.
var errBatchSkipped = errors.New("record: corrupt batch skipped")

// appendEntryHeader appends r's header fields — the v1 header minus magic
// and header CRC, which is exactly a v2 batch entry header — and returns
// the extended slice.
func appendEntryHeader(dst []byte, r *Record) []byte {
	dst = append(dst, byte(r.Kind))
	dst = appendU16(dst, r.Subtype)
	dst = appendU16(dst, r.Scope)
	dst = appendU16(dst, uint16(r.ScopeType))
	dst = appendU64(dst, r.Seq)
	dst = appendU32(dst, r.SourceID)
	dst = appendU16(dst, uint16(r.PayloadType))
	return appendU32(dst, uint32(len(r.Payload)))
}

// AppendWire appends the v1 wire encoding of r to dst and returns the
// extended slice.
func AppendWire(dst []byte, r *Record) []byte {
	start := len(dst)
	dst = appendU32(dst, wireMagic)
	dst = appendEntryHeader(dst, r)
	hcrc := crc32.ChecksumIEEE(dst[start+4:])
	dst = appendU16(dst, uint16(hcrc))
	dst = append(dst, r.Payload...)
	crc := crc32.ChecksumIEEE(dst[start+4:])
	return appendU32(dst, crc)
}

// AppendBatchWire appends one v2 batch frame carrying recs to dst and
// returns the extended slice. It is the one-shot form of BatchWriter's v2
// framing, used by tests and tools; the hot path assembles the frame
// incrementally. recs must be non-empty and hold at most MaxBatchRecords
// records.
func AppendBatchWire(dst []byte, recs ...*Record) []byte {
	if len(recs) == 0 || len(recs) > MaxBatchRecords {
		panic("record: AppendBatchWire: batch must carry 1..65535 records")
	}
	start := len(dst)
	dst = appendU32(dst, wireMagicV2)
	dst = appendU16(dst, uint16(len(recs)))
	dst = appendU32(dst, 0) // bodyLen, patched below
	dst = appendU16(dst, 0) // hdrCRC, patched below
	for _, r := range recs {
		dst = appendEntryHeader(dst, r)
		dst = append(dst, r.Payload...)
	}
	body := len(dst) - start - batchHdrSize
	putU32(dst[start+6:], uint32(body))
	putU16(dst[start+10:], uint16(crc32.Checksum(dst[start+4:start+10], castagnoli)))
	crc := crc32.Checksum(dst[start+4:], castagnoli)
	return appendU32(dst, crc)
}

// WireSize returns the v1 encoded size of r in bytes.
func WireSize(r *Record) int {
	return headerSize + len(r.Payload) + trailerSize
}

// Writer encodes records onto an io.Writer. Writer is not safe for
// concurrent use.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	n   uint64 // records written
}

// NewWriter returns a Writer encoding onto w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10)}
}

// Write encodes one record. The record is flushed to the underlying writer
// eagerly so a networked peer observes records promptly.
func (w *Writer) Write(r *Record) error {
	if !r.Kind.Valid() {
		return fmt.Errorf("record: write: invalid kind %d", r.Kind)
	}
	if len(r.Payload) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(r.Payload))
	}
	w.buf = AppendWire(w.buf[:0], r)
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("record: write: %w", err)
	}
	w.n++
	return w.w.Flush()
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.n }

// Reader decodes records from an io.Reader. It accepts both framings —
// each frame identifies itself by magic word, so v1 records and v2
// batches may be freely interleaved on one stream. Reader is not safe for
// concurrent use.
type Reader struct {
	r      *bufio.Reader
	n      uint64
	strict bool
	pooled bool

	// Cursor over the current CRC-verified v2 batch body: records are
	// materialized lazily, one per Read, so a deep batch never bursts
	// hundreds of pooled records into flight at once. batch aliases
	// either the bufio peek window (kept valid because the reader does no
	// other buffer operation until the cursor drains) or batchBuf.
	batch        []byte
	batchOff     int // offset of the next undecoded entry in batch
	batchLeft    int // entries not yet handed to the caller
	batchConsume int // bytes to Discard when the cursor drains (peek path)
	// batchBuf is the reader-owned spill buffer for v2 batches larger
	// than the bufio window; reused across such batches.
	batchBuf []byte
	// corrupt counts v2 batches dropped whole for a CRC or structural
	// failure after a valid batch header (skip-mode resync).
	corrupt uint64
}

// NewReader returns a Reader decoding from r. The reader resynchronizes on
// the next magic word after encountering corruption unless SetStrict(true)
// is called.
func NewReader(r io.Reader) *Reader {
	return NewReaderSize(r, 64<<10)
}

// NewReaderSize returns a Reader with a read buffer of at least size bytes.
// Batched writers deliver whole batches in one network write; a buffer
// sized to the peer's batch limit (see BatchConfig.MaxBytes) lets the
// reader ingest a batch per syscall and decode every record on the
// zero-extra-copy Peek fast path.
func NewReaderSize(r io.Reader, size int) *Reader {
	if size < headerSize+trailerSize {
		size = headerSize + trailerSize
	}
	return &Reader{r: bufio.NewReaderSize(r, size)}
}

// SetStrict controls corruption handling: in strict mode any framing or
// checksum error is returned to the caller; otherwise Read skips forward to
// the next magic word and tries again.
func (r *Reader) SetStrict(strict bool) { r.strict = strict }

// SetPooled controls record allocation: when pooled, decoded records come
// from the record pool (GetRecord) and reuse payload capacity in place.
// The consumer of a pooled reader's records takes ownership of each one
// and releases it (Release) when done — see the ownership contract in
// pool.go. Off by default so plain readers can retain records freely.
func (r *Reader) SetPooled(pooled bool) { r.pooled = pooled }

// newRecord returns the destination record for one decode: pooled (with
// reusable payload capacity) or freshly allocated.
func (r *Reader) newRecord() *Record {
	if r.pooled {
		return GetRecord()
	}
	return new(Record)
}

// Reset discards any buffered state and switches the reader to decode
// from src, retaining the underlying buffer and mode flags. It lets one
// reader (and its read buffer) serve a sequence of streams without
// reallocating.
func (r *Reader) Reset(src io.Reader) {
	r.batch = nil
	r.batchOff, r.batchLeft, r.batchConsume = 0, 0, 0
	r.r.Reset(src)
	r.n = 0
}

// Count returns the number of records successfully read.
func (r *Reader) Count() uint64 { return r.n }

// CorruptBatches returns the number of v2 batches dropped whole because
// their CRC (or internal structure) failed after a valid batch header.
// Each drop loses exactly that batch: the reader re-syncs on the next
// frame magic and keeps decoding.
func (r *Reader) CorruptBatches() uint64 { return r.corrupt }

// Read decodes the next record. It returns io.EOF at a clean end of stream
// and io.ErrUnexpectedEOF if the stream ends mid-record.
func (r *Reader) Read() (*Record, error) {
	for {
		if r.batchLeft > 0 {
			rec := r.nextBatchRecord()
			r.n++
			return rec, nil
		}
		rec, err := r.readOne()
		if err == nil {
			r.n++
			return rec, nil
		}
		if errors.Is(err, errBatchSkipped) {
			// The corrupt batch was consumed whole; the stream is already
			// positioned at the next frame boundary.
			continue
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, err
		}
		if r.strict {
			return nil, err
		}
		// Resynchronize: drop one byte and scan for the next magic word.
		if _, derr := r.r.Discard(1); derr != nil {
			return nil, io.EOF
		}
		if serr := r.seekMagic(); serr != nil {
			return nil, serr
		}
	}
}

// readOne decodes the frame at the current position, dispatching on its
// magic word: a v1 frame yields one record, a v2 frame decodes a whole
// batch (first record returned, the rest queued on pend).
func (r *Reader) readOne() (*Record, error) {
	m, err := r.r.Peek(4)
	if err != nil {
		if len(m) == 0 {
			return nil, io.EOF
		}
		if !magicPrefix(m) {
			// Trailing garbage shorter than a magic word; treat as EOF
			// after the resync scan fails to find another record.
			return nil, ErrBadMagic
		}
		return nil, unexpectedEOF(err)
	}
	switch getU32(m) {
	case wireMagic:
		return r.readOneV1()
	case wireMagicV2:
		return r.readBatchV2()
	default:
		return nil, ErrBadMagic
	}
}

// readOneV1 decodes the v1 record at the current position. Whenever the
// whole record fits in the read buffer it is validated via Peek before any
// byte is consumed, so a framing or checksum error leaves the stream
// positioned at the bad record and Read can resynchronize without losing
// the records that follow it. Records larger than the buffer fall back to
// consuming reads.
func (r *Reader) readOneV1() (*Record, error) {
	hdr, err := r.r.Peek(headerSize)
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	plen := getU32(hdr[25:])
	if plen > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, plen)
	}
	if !Kind(hdr[4]).Valid() {
		return nil, fmt.Errorf("record: invalid kind %d on wire", hdr[4])
	}
	if want := getU16(hdr[hdrCRCOff:]); uint16(crc32.ChecksumIEEE(hdr[4:hdrCRCOff])) != want {
		return nil, fmt.Errorf("%w: header CRC", ErrBadChecksum)
	}
	total := headerSize + int(plen) + trailerSize
	if total <= r.r.Size() {
		full, err := r.r.Peek(total)
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		payload := full[headerSize : headerSize+int(plen)]
		want := getU32(full[headerSize+int(plen):])
		if got := crc32.ChecksumIEEE(full[4 : headerSize+int(plen)]); got != want {
			return nil, fmt.Errorf("%w: got %08x want %08x", ErrBadChecksum, got, want)
		}
		rec := r.newRecord()
		// The second Peek may have slid the buffer and invalidated hdr;
		// full is the live view of the same bytes.
		fillHeader(rec, full)
		if plen > 0 {
			copy(rec.ensurePayload(int(plen)), payload)
		}
		if _, err := r.r.Discard(total); err != nil {
			r.recycle(rec)
			return nil, fmt.Errorf("record: discard: %w", err)
		}
		return rec, nil
	}
	// Record exceeds the peek window: consume as we go. A checksum failure
	// on this path cannot rewind, so corruption may cost trailing records.
	var hdrCopy [headerSize]byte
	copy(hdrCopy[:], hdr)
	if _, err := r.r.Discard(headerSize); err != nil {
		return nil, fmt.Errorf("record: discard header: %w", err)
	}
	rec := r.newRecord()
	fillHeader(rec, hdrCopy[:])
	if _, err := io.ReadFull(r.r, rec.ensurePayload(int(plen))); err != nil {
		r.recycle(rec)
		return nil, unexpectedEOF(err)
	}
	var trailer [trailerSize]byte
	if _, err := io.ReadFull(r.r, trailer[:]); err != nil {
		r.recycle(rec)
		return nil, unexpectedEOF(err)
	}
	want := getU32(trailer[:])
	got := crc32.ChecksumIEEE(hdrCopy[4:])
	got = crc32.Update(got, crc32.IEEETable, rec.Payload)
	if got != want {
		r.recycle(rec)
		return nil, fmt.Errorf("%w: got %08x want %08x", ErrBadChecksum, got, want)
	}
	return rec, nil
}

// readBatchV2 verifies the v2 batch frame at the current position and
// opens the lazy decode cursor over its body, returning its first record.
// The batch header CRC is verified before count/bodyLen are trusted; the
// whole-batch CRC and entry structure are verified in one pass before any
// record is materialized. A batch that fails after a valid header is
// consumed whole and reported via errBatchSkipped (non-strict), so only
// that batch is lost and decoding resumes at the next frame.
func (r *Reader) readBatchV2() (*Record, error) {
	hdr, err := r.r.Peek(batchHdrSize)
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	if want := getU16(hdr[10:]); uint16(crc32.Checksum(hdr[4:10], castagnoli)) != want {
		// count/bodyLen cannot be trusted, so the frame length is unknown:
		// fall back to byte-wise resync in Read.
		return nil, fmt.Errorf("%w: batch header CRC", ErrBadChecksum)
	}
	count := int(getU16(hdr[4:]))
	bodyLen := int(getU32(hdr[6:]))
	if count == 0 || bodyLen < count*entryHdrSize || bodyLen > MaxBatchBody {
		return nil, fmt.Errorf("%w: count=%d bodyLen=%d", ErrBadBatch, count, bodyLen)
	}
	total := batchHdrSize + bodyLen + batchTrailerSize
	var frame []byte
	consumed := total
	if total <= r.r.Size() {
		frame, err = r.r.Peek(total)
		if err != nil {
			return nil, unexpectedEOF(err)
		}
	} else {
		// Batch exceeds the peek window: spill into a reader-owned buffer.
		// The bytes are consumed up front, which is fine — a failure below
		// drops exactly this batch either way.
		if cap(r.batchBuf) < total {
			r.batchBuf = make([]byte, total)
		}
		frame = r.batchBuf[:total]
		if _, err := io.ReadFull(r.r, frame); err != nil {
			return nil, unexpectedEOF(err)
		}
		consumed = 0
	}
	if want := getU32(frame[batchHdrSize+bodyLen:]); crc32.Checksum(frame[4:batchHdrSize+bodyLen], castagnoli) != want {
		return nil, r.dropBatch(consumed, fmt.Errorf("%w: batch CRC", ErrBadChecksum))
	}
	body := frame[batchHdrSize : batchHdrSize+bodyLen]
	if err := scanBatchBody(body, count); err != nil {
		return nil, r.dropBatch(consumed, err)
	}
	r.batch = body
	r.batchOff = 0
	r.batchLeft = count
	r.batchConsume = consumed
	return r.nextBatchRecord(), nil
}

// nextBatchRecord materializes the next record of the open batch cursor.
// The body has passed the batch CRC and the structural scan, so the entry
// geometry is trusted here. When the last record is handed out the frame's
// bytes are released back to the buffer (the peek path defers its Discard
// until now, since the cursor aliases the buffered bytes).
func (r *Reader) nextBatchRecord() *Record {
	e := r.batch[r.batchOff:]
	plen := int(getU32(e[21:]))
	rec := r.newRecord()
	fillEntryHeader(rec, e)
	if plen > 0 {
		copy(rec.ensurePayload(plen), e[entryHdrSize:entryHdrSize+plen])
	}
	r.batchOff += entryHdrSize + plen
	if r.batchLeft--; r.batchLeft == 0 {
		r.batch = nil
		r.batchOff = 0
		if r.batchConsume > 0 {
			// The whole frame is buffered (it was Peeked), so the Discard
			// cannot fail.
			_, _ = r.r.Discard(r.batchConsume)
			r.batchConsume = 0
		}
	}
	return rec
}

// dropBatch consumes a corrupt batch (when its bytes are still buffered),
// counts it, and converts the failure to the skip sentinel unless the
// reader is strict.
func (r *Reader) dropBatch(consume int, cause error) error {
	r.corrupt++
	if consume > 0 {
		if _, err := r.r.Discard(consume); err != nil {
			return fmt.Errorf("record: discard corrupt batch: %w", err)
		}
	}
	if r.strict {
		return cause
	}
	return errBatchSkipped
}

// scanBatchBody validates the entry structure of a CRC-verified batch
// body without materializing anything. The CRC has passed, so structural
// inconsistencies (entry overruns, trailing slack, an invalid kind)
// indicate an encoder bug or an astronomically unlucky collision; they
// fail the whole batch before a single record is allocated.
func scanBatchBody(body []byte, count int) error {
	off := 0
	for i := 0; i < count; i++ {
		if len(body)-off < entryHdrSize {
			return fmt.Errorf("%w: entry %d header truncated", ErrBadBatch, i)
		}
		e := body[off : off+entryHdrSize]
		plen := int(getU32(e[21:]))
		if plen > MaxPayload {
			return fmt.Errorf("%w: entry %d: %v", ErrBadBatch, i, ErrTooLarge)
		}
		if !Kind(e[0]).Valid() {
			return fmt.Errorf("%w: entry %d: invalid kind %d", ErrBadBatch, i, e[0])
		}
		if len(body)-off-entryHdrSize < plen {
			return fmt.Errorf("%w: entry %d payload truncated", ErrBadBatch, i)
		}
		off += entryHdrSize + plen
	}
	if off != len(body) {
		return fmt.Errorf("%w: %d slack bytes after last entry", ErrBadBatch, len(body)-off)
	}
	return nil
}

// fillHeader populates rec's header fields from a validated v1 wire
// header, leaving the payload untouched.
func fillHeader(rec *Record, hdr []byte) { fillEntryHeader(rec, hdr[4:]) }

// fillEntryHeader populates rec's header fields from a v2 batch entry
// header (identical to the v1 header sans magic and header CRC).
func fillEntryHeader(rec *Record, e []byte) {
	rec.Kind = Kind(e[0])
	rec.Subtype = getU16(e[1:])
	rec.Scope = getU16(e[3:])
	rec.ScopeType = ScopeType(getU16(e[5:]))
	rec.Seq = getU64(e[7:])
	rec.SourceID = getU32(e[15:])
	rec.PayloadType = PayloadType(getU16(e[19:]))
}

// recycle returns a half-decoded record to the pool on error paths.
func (r *Reader) recycle(rec *Record) {
	if r.pooled {
		Release(rec)
	}
}

// magicPrefix reports whether b (up to 4 bytes) is a prefix of either
// frame magic; used only to distinguish trailing garbage from a truncated
// frame start.
func magicPrefix(b []byte) bool {
	const common = "DRV"
	for i, c := range b {
		if i < len(common) {
			if c != common[i] {
				return false
			}
		} else if c != '1' && c != '2' {
			return false
		}
	}
	return true
}

// seekMagic advances the reader until the next 4 bytes are a frame magic
// word — either version — without consuming them.
func (r *Reader) seekMagic() error {
	for {
		b, err := r.r.Peek(4)
		if err != nil {
			return io.EOF
		}
		if m := getU32(b); m == wireMagic || m == wireMagicV2 {
			return nil
		}
		if _, err := r.r.Discard(1); err != nil {
			return io.EOF
		}
	}
}

func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func getU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU16(b []byte, v uint16) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
