package record

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire format (all integers little-endian):
//
//	magic      uint32  'D','R','V','1'
//	kind       uint8
//	subtype    uint16
//	scope      uint16
//	scopeType  uint16
//	seq        uint64
//	sourceID   uint32
//	payloadTyp uint16
//	payloadLen uint32
//	hdrCRC     uint16  (low 16 bits of IEEE CRC-32 over kind..payloadLen)
//	payload    [payloadLen]byte
//	crc32      uint32  (IEEE, over everything from kind through payload)
//
// The magic word lets a reader resynchronize on a byte stream after a
// partial write; the header CRC lets the reader reject a corrupted length
// field before committing to consume payload bytes; the trailing CRC
// detects payload corruption and false magic matches.

const (
	wireMagic   = uint32('D') | uint32('R')<<8 | uint32('V')<<16 | uint32('1')<<24
	hdrCRCOff   = 4 + 1 + 2 + 2 + 2 + 8 + 4 + 2 + 4
	headerSize  = hdrCRCOff + 2
	trailerSize = 4
	// MaxPayload bounds the payload size accepted by the decoder. It
	// protects readers from corrupt length fields; 64 MiB is far above any
	// record produced by the acoustic pipeline (a 30 s clip is ~1.5 MiB).
	MaxPayload = 64 << 20
)

// Codec errors.
var (
	ErrBadMagic    = errors.New("record: bad magic word")
	ErrBadChecksum = errors.New("record: checksum mismatch")
	ErrTooLarge    = errors.New("record: payload exceeds MaxPayload")
)

// AppendWire appends the wire encoding of r to dst and returns the extended
// slice.
func AppendWire(dst []byte, r *Record) []byte {
	start := len(dst)
	dst = appendU32(dst, wireMagic)
	dst = append(dst, byte(r.Kind))
	dst = appendU16(dst, r.Subtype)
	dst = appendU16(dst, r.Scope)
	dst = appendU16(dst, uint16(r.ScopeType))
	dst = appendU64(dst, r.Seq)
	dst = appendU32(dst, r.SourceID)
	dst = appendU16(dst, uint16(r.PayloadType))
	dst = appendU32(dst, uint32(len(r.Payload)))
	hcrc := crc32.ChecksumIEEE(dst[start+4:])
	dst = appendU16(dst, uint16(hcrc))
	dst = append(dst, r.Payload...)
	crc := crc32.ChecksumIEEE(dst[start+4:])
	return appendU32(dst, crc)
}

// WireSize returns the encoded size of r in bytes.
func WireSize(r *Record) int {
	return headerSize + len(r.Payload) + trailerSize
}

// Writer encodes records onto an io.Writer. Writer is not safe for
// concurrent use.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	n   uint64 // records written
}

// NewWriter returns a Writer encoding onto w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10)}
}

// Write encodes one record. The record is flushed to the underlying writer
// eagerly so a networked peer observes records promptly.
func (w *Writer) Write(r *Record) error {
	if !r.Kind.Valid() {
		return fmt.Errorf("record: write: invalid kind %d", r.Kind)
	}
	if len(r.Payload) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(r.Payload))
	}
	w.buf = AppendWire(w.buf[:0], r)
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("record: write: %w", err)
	}
	w.n++
	return w.w.Flush()
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.n }

// Reader decodes records from an io.Reader. Reader is not safe for
// concurrent use.
type Reader struct {
	r      *bufio.Reader
	n      uint64
	strict bool
	pooled bool
}

// NewReader returns a Reader decoding from r. The reader resynchronizes on
// the next magic word after encountering corruption unless SetStrict(true)
// is called.
func NewReader(r io.Reader) *Reader {
	return NewReaderSize(r, 64<<10)
}

// NewReaderSize returns a Reader with a read buffer of at least size bytes.
// Batched writers deliver whole batches in one network write; a buffer
// sized to the peer's batch limit (see BatchConfig.MaxBytes) lets the
// reader ingest a batch per syscall and decode every record on the
// zero-extra-copy Peek fast path.
func NewReaderSize(r io.Reader, size int) *Reader {
	if size < headerSize+trailerSize {
		size = headerSize + trailerSize
	}
	return &Reader{r: bufio.NewReaderSize(r, size)}
}

// SetStrict controls corruption handling: in strict mode any framing or
// checksum error is returned to the caller; otherwise Read skips forward to
// the next magic word and tries again.
func (r *Reader) SetStrict(strict bool) { r.strict = strict }

// SetPooled controls record allocation: when pooled, decoded records come
// from the record pool (GetRecord) and reuse payload capacity in place.
// The consumer of a pooled reader's records takes ownership of each one
// and releases it (Release) when done — see the ownership contract in
// pool.go. Off by default so plain readers can retain records freely.
func (r *Reader) SetPooled(pooled bool) { r.pooled = pooled }

// newRecord returns the destination record for one decode: pooled (with
// reusable payload capacity) or freshly allocated.
func (r *Reader) newRecord() *Record {
	if r.pooled {
		return GetRecord()
	}
	return new(Record)
}

// Reset discards any buffered state and switches the reader to decode
// from src, retaining the underlying buffer and mode flags. It lets one
// reader (and its read buffer) serve a sequence of streams without
// reallocating.
func (r *Reader) Reset(src io.Reader) {
	r.r.Reset(src)
	r.n = 0
}

// Count returns the number of records successfully read.
func (r *Reader) Count() uint64 { return r.n }

// Read decodes the next record. It returns io.EOF at a clean end of stream
// and io.ErrUnexpectedEOF if the stream ends mid-record.
func (r *Reader) Read() (*Record, error) {
	for {
		rec, err := r.readOne()
		if err == nil {
			r.n++
			return rec, nil
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, err
		}
		if r.strict {
			return nil, err
		}
		// Resynchronize: drop one byte and scan for the next magic word.
		if _, derr := r.r.Discard(1); derr != nil {
			return nil, io.EOF
		}
		if serr := r.seekMagic(); serr != nil {
			return nil, serr
		}
	}
}

// readOne decodes the record at the current position. Whenever the whole
// record fits in the read buffer it is validated via Peek before any byte
// is consumed, so a framing or checksum error leaves the stream positioned
// at the bad record and Read can resynchronize without losing the records
// that follow it. Records larger than the buffer fall back to consuming
// reads.
func (r *Reader) readOne() (*Record, error) {
	hdr, err := r.r.Peek(headerSize)
	if err != nil {
		if len(hdr) == 0 {
			return nil, io.EOF
		}
		if getU32Partial(hdr) != wireMagic {
			// Trailing garbage shorter than a header; treat as EOF after
			// the resync scan fails to find another record.
			return nil, ErrBadMagic
		}
		return nil, unexpectedEOF(err)
	}
	if getU32(hdr) != wireMagic {
		return nil, ErrBadMagic
	}
	plen := getU32(hdr[25:])
	if plen > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, plen)
	}
	if !Kind(hdr[4]).Valid() {
		return nil, fmt.Errorf("record: invalid kind %d on wire", hdr[4])
	}
	if want := getU16(hdr[hdrCRCOff:]); uint16(crc32.ChecksumIEEE(hdr[4:hdrCRCOff])) != want {
		return nil, fmt.Errorf("%w: header CRC", ErrBadChecksum)
	}
	total := headerSize + int(plen) + trailerSize
	if total <= r.r.Size() {
		full, err := r.r.Peek(total)
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		payload := full[headerSize : headerSize+int(plen)]
		want := getU32(full[headerSize+int(plen):])
		if got := crc32.ChecksumIEEE(full[4 : headerSize+int(plen)]); got != want {
			return nil, fmt.Errorf("%w: got %08x want %08x", ErrBadChecksum, got, want)
		}
		rec := r.newRecord()
		// The second Peek may have slid the buffer and invalidated hdr;
		// full is the live view of the same bytes.
		fillHeader(rec, full)
		if plen > 0 {
			copy(rec.ensurePayload(int(plen)), payload)
		}
		if _, err := r.r.Discard(total); err != nil {
			r.recycle(rec)
			return nil, fmt.Errorf("record: discard: %w", err)
		}
		return rec, nil
	}
	// Record exceeds the peek window: consume as we go. A checksum failure
	// on this path cannot rewind, so corruption may cost trailing records.
	var hdrCopy [headerSize]byte
	copy(hdrCopy[:], hdr)
	if _, err := r.r.Discard(headerSize); err != nil {
		return nil, fmt.Errorf("record: discard header: %w", err)
	}
	rec := r.newRecord()
	fillHeader(rec, hdrCopy[:])
	if _, err := io.ReadFull(r.r, rec.ensurePayload(int(plen))); err != nil {
		r.recycle(rec)
		return nil, unexpectedEOF(err)
	}
	var trailer [trailerSize]byte
	if _, err := io.ReadFull(r.r, trailer[:]); err != nil {
		r.recycle(rec)
		return nil, unexpectedEOF(err)
	}
	want := getU32(trailer[:])
	got := crc32.ChecksumIEEE(hdrCopy[4:])
	got = crc32.Update(got, crc32.IEEETable, rec.Payload)
	if got != want {
		r.recycle(rec)
		return nil, fmt.Errorf("%w: got %08x want %08x", ErrBadChecksum, got, want)
	}
	return rec, nil
}

// fillHeader populates rec's header fields from a validated wire header,
// leaving the payload untouched.
func fillHeader(rec *Record, hdr []byte) {
	rec.Kind = Kind(hdr[4])
	rec.Subtype = getU16(hdr[5:])
	rec.Scope = getU16(hdr[7:])
	rec.ScopeType = ScopeType(getU16(hdr[9:]))
	rec.Seq = getU64(hdr[11:])
	rec.SourceID = getU32(hdr[19:])
	rec.PayloadType = PayloadType(getU16(hdr[23:]))
}

// recycle returns a half-decoded record to the pool on error paths.
func (r *Reader) recycle(rec *Record) {
	if r.pooled {
		Release(rec)
	}
}

// getU32Partial reads up to 4 bytes, zero-padding; used only to distinguish
// trailing garbage from a truncated record start.
func getU32Partial(b []byte) uint32 {
	var v uint32
	for i := 0; i < len(b) && i < 4; i++ {
		v |= uint32(b[i]) << (8 * i)
	}
	return v
}

// seekMagic advances the reader until the next 4 bytes are the magic word
// (without consuming them).
func (r *Reader) seekMagic() error {
	for {
		b, err := r.r.Peek(4)
		if err != nil {
			return io.EOF
		}
		if getU32(b) == wireMagic {
			return nil
		}
		if _, err := r.r.Discard(1); err != nil {
			return io.EOF
		}
	}
}

func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func getU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
