package record

import "testing"

func TestReplicaTagRoundTrip(t *testing.T) {
	stream := ReplicaStreamID("extract")
	if stream == 0 {
		t.Fatal("stream id must be nonzero")
	}
	if ReplicaStreamID("extract") != stream {
		t.Fatal("stream id not stable")
	}
	if ReplicaStreamID("other") == stream {
		t.Fatal("distinct groups share a stream id")
	}
	r := NewData(SubtypeAudio)
	r.Seq = 12345 // pipeline-stamped; the tag overwrites it
	TagReplica(r, stream, 7, 99)
	epoch, n, ok := ReplicaTag(r, stream)
	if !ok || epoch != 7 || n != 99 {
		t.Fatalf("tag round trip: ok=%v epoch=%d n=%d", ok, epoch, n)
	}
	if _, _, ok := ReplicaTag(r, ReplicaStreamID("other")); ok {
		t.Error("tag accepted for the wrong stream")
	}
	if _, _, ok := ReplicaTag(r, 0); ok {
		t.Error("tag accepted for stream 0")
	}
	// The annotation survives the wire unchanged (it rides Seq/SourceID).
	var buf []byte
	buf = AppendWire(buf, r)
	recs := readAll(t, buf)
	if len(recs) != 1 {
		t.Fatalf("decoded %d records", len(recs))
	}
	epoch, n, ok = ReplicaTag(recs[0], stream)
	if !ok || epoch != 7 || n != 99 {
		t.Fatalf("tag after wire round trip: ok=%v epoch=%d n=%d", ok, epoch, n)
	}
	// Counter wrap stays inside the 48-bit field.
	TagReplica(r, stream, 1, 1<<ReplicaSeqBits|5)
	if epoch, n, _ := ReplicaTag(r, stream); epoch != 1 || n != 5 {
		t.Errorf("wrapped counter: epoch=%d n=%d, want 1, 5", epoch, n)
	}
}
