package record

import "sync"

// Record pooling.
//
// The steady-state transport path (streamout → streamin → merger) turns
// over one *Record per stream record; without reuse every decoded record
// and payload is a fresh heap allocation. GetRecord/Release back records
// with a sync.Pool so the hot path recycles both the Record header and
// its payload buffer.
//
// # Ownership contract
//
// A *Record has exactly one owner at a time. Handing a record to
// Emitter.Emit, Sink.Consume, or Operator.Process transfers ownership to
// the callee; the caller must not touch the record (or any slice aliasing
// its payload) afterwards. The final owner — and only the final owner —
// calls Release. Components that copy the bytes out synchronously
// (BatchWriter.Add, StreamOut.Consume, the typed Float64s/PCM16/...
// decoders) do not retain the record, so their caller keeps ownership.
// Holding a record past a handoff requires Clone (or GetCopy).
//
// Release is always optional: a record that is never released is simply
// collected by the GC, so sources that produce un-pooled records and
// sinks that never release interoperate freely with pooled components.
const (
	// maxPooledPayload bounds the payload capacity retained by Release.
	// Oversized one-off payloads (full clips, large contexts) are dropped
	// so a single huge record cannot pin megabytes inside the pool.
	maxPooledPayload = 1 << 20
)

var recordPool = sync.Pool{
	New: func() any { return new(Record) },
}

// GetRecord returns a cleared record from the pool. The record's payload
// slice has length zero but may retain capacity from a prior use; the
// Set* helpers and the decoder reuse that capacity in place.
func GetRecord() *Record {
	return recordPool.Get().(*Record)
}

// Release returns r to the pool after clearing its header and truncating
// (but keeping) its payload buffer. The caller must not use r, or any
// slice obtained from its payload, after Release. Release(nil) is a no-op.
func Release(r *Record) {
	if r == nil {
		return
	}
	p := r.Payload
	*r = Record{}
	if cap(p) > 0 && cap(p) <= maxPooledPayload {
		r.Payload = p[:0]
	}
	recordPool.Put(r)
}

// GetCopy returns a pooled deep copy of r: a clone whose storage comes
// from (and can be released back to) the record pool. Use it when a
// component must retain a record beyond a handoff boundary, e.g. the
// replica splitter fanning one input record out to several legs.
func GetCopy(r *Record) *Record {
	return r.CloneInto(GetRecord())
}
