package record

import (
	"errors"
	"math/rand"
	"testing"
)

func TestTrackerBalanced(t *testing.T) {
	tr := NewTracker()
	seq := []*Record{
		NewOpenScope(ScopeSession, 0),
		NewOpenScope(ScopeClip, 1),
		NewData(SubtypeAudio),
		NewOpenScope(ScopeEnsemble, 2),
		NewData(SubtypeAudio),
		NewCloseScope(ScopeEnsemble, 2),
		NewCloseScope(ScopeClip, 1),
		NewCloseScope(ScopeSession, 0),
	}
	for i, r := range seq {
		if err := tr.Observe(r); err != nil {
			t.Fatalf("record %d (%s): %v", i, r, err)
		}
	}
	if tr.Depth() != 0 {
		t.Errorf("depth after balanced sequence = %d, want 0", tr.Depth())
	}
}

func TestTrackerDepthMismatchOpen(t *testing.T) {
	tr := NewTracker()
	if err := tr.Observe(NewOpenScope(ScopeClip, 3)); !errors.Is(err, ErrScopeBalance) {
		t.Errorf("expected ErrScopeBalance, got %v", err)
	}
}

func TestTrackerCloseWithoutOpen(t *testing.T) {
	tr := NewTracker()
	if err := tr.Observe(NewCloseScope(ScopeClip, 0)); !errors.Is(err, ErrScopeBalance) {
		t.Errorf("expected ErrScopeBalance, got %v", err)
	}
}

func TestTrackerCloseWrongDepth(t *testing.T) {
	tr := NewTracker()
	mustObserve(t, tr, NewOpenScope(ScopeClip, 0))
	if err := tr.Observe(NewCloseScope(ScopeClip, 5)); !errors.Is(err, ErrScopeBalance) {
		t.Errorf("expected ErrScopeBalance, got %v", err)
	}
}

func TestTrackerCloseWrongType(t *testing.T) {
	tr := NewTracker()
	mustObserve(t, tr, NewOpenScope(ScopeClip, 0))
	if err := tr.Observe(NewCloseScope(ScopeEnsemble, 0)); !errors.Is(err, ErrScopeBalance) {
		t.Errorf("expected ErrScopeBalance, got %v", err)
	}
}

func TestTrackerBadCloseAccepted(t *testing.T) {
	tr := NewTracker()
	mustObserve(t, tr, NewOpenScope(ScopeClip, 0))
	if err := tr.Observe(NewBadCloseScope(ScopeClip, 0)); err != nil {
		t.Errorf("BadCloseScope should close a scope: %v", err)
	}
	if tr.Depth() != 0 {
		t.Errorf("depth = %d, want 0", tr.Depth())
	}
}

func TestTrackerInvalidKind(t *testing.T) {
	tr := NewTracker()
	if err := tr.Observe(&Record{Kind: Kind(0)}); err == nil {
		t.Error("expected error for invalid kind")
	}
}

func TestTrackerCloseAll(t *testing.T) {
	tr := NewTracker()
	mustObserve(t, tr, NewOpenScope(ScopeSession, 0))
	mustObserve(t, tr, NewOpenScope(ScopeClip, 1))
	mustObserve(t, tr, NewOpenScope(ScopeEnsemble, 2))
	closes := tr.CloseAll()
	if len(closes) != 3 {
		t.Fatalf("CloseAll returned %d records, want 3", len(closes))
	}
	// Innermost first.
	wantTypes := []ScopeType{ScopeEnsemble, ScopeClip, ScopeSession}
	wantDepths := []uint16{2, 1, 0}
	for i, r := range closes {
		if r.Kind != KindBadCloseScope {
			t.Errorf("close %d kind = %s, want BadCloseScope", i, r.Kind)
		}
		if r.ScopeType != wantTypes[i] || r.Scope != wantDepths[i] {
			t.Errorf("close %d = %s/%d, want %s/%d", i, r.ScopeType, r.Scope, wantTypes[i], wantDepths[i])
		}
	}
	if tr.Depth() != 0 {
		t.Error("tracker not reset after CloseAll")
	}
	// The synthesized closes must themselves be a valid closing sequence.
	tr2 := NewTracker()
	mustObserve(t, tr2, NewOpenScope(ScopeSession, 0))
	mustObserve(t, tr2, NewOpenScope(ScopeClip, 1))
	mustObserve(t, tr2, NewOpenScope(ScopeEnsemble, 2))
	for _, r := range closes {
		if err := tr2.Observe(r); err != nil {
			t.Errorf("synthesized close rejected: %v", err)
		}
	}
}

func TestTrackerContextLookup(t *testing.T) {
	tr := NewTracker()
	sess := NewOpenScope(ScopeSession, 0)
	sess.SetContext(map[string]string{CtxStation: "kbs-01", CtxSampleRate: "22050"})
	clip := NewOpenScope(ScopeClip, 1)
	clip.SetContext(map[string]string{CtxSampleRate: "24576"})
	mustObserve(t, tr, sess)
	mustObserve(t, tr, clip)

	// Innermost scope shadows outer for the same key.
	if v, ok := tr.ContextValue(CtxSampleRate); !ok || v != "24576" {
		t.Errorf("ContextValue(sample_rate) = %q, %v; want 24576", v, ok)
	}
	// Outer-scope keys remain visible.
	if v, ok := tr.ContextValue(CtxStation); !ok || v != "kbs-01" {
		t.Errorf("ContextValue(station) = %q, %v; want kbs-01", v, ok)
	}
	if _, ok := tr.ContextValue("absent"); ok {
		t.Error("absent key should not be found")
	}
}

func TestTrackerTopAndFrames(t *testing.T) {
	tr := NewTracker()
	if _, ok := tr.Top(); ok {
		t.Error("Top on empty tracker should report false")
	}
	mustObserve(t, tr, NewOpenScope(ScopeClip, 0))
	top, ok := tr.Top()
	if !ok || top.Type != ScopeClip || top.Depth != 0 {
		t.Errorf("Top = %+v, %v", top, ok)
	}
	frames := tr.Frames()
	if len(frames) != 1 || frames[0].Type != ScopeClip {
		t.Errorf("Frames = %+v", frames)
	}
	frames[0].Type = ScopeEnsemble // must not alias internal state
	if top, _ := tr.Top(); top.Type != ScopeClip {
		t.Error("Frames aliases tracker internals")
	}
}

func TestTrackerReset(t *testing.T) {
	tr := NewTracker()
	mustObserve(t, tr, NewOpenScope(ScopeClip, 0))
	tr.Reset()
	if tr.Depth() != 0 {
		t.Error("Reset did not clear scopes")
	}
}

func TestScopeBuilderNesting(t *testing.T) {
	var b ScopeBuilder
	open1 := b.Open(ScopeClip, map[string]string{CtxSampleRate: "24576"})
	if open1.Scope != 0 || open1.Kind != KindOpenScope {
		t.Errorf("first open: %s", open1)
	}
	open2 := b.Open(ScopeEnsemble, nil)
	if open2.Scope != 1 {
		t.Errorf("nested open depth = %d, want 1", open2.Scope)
	}
	if b.Depth() != 2 {
		t.Errorf("builder depth = %d, want 2", b.Depth())
	}
	close2 := b.Close()
	if close2.ScopeType != ScopeEnsemble || close2.Scope != 1 {
		t.Errorf("close = %s", close2)
	}
	close1 := b.Close()
	if close1.ScopeType != ScopeClip || close1.Scope != 0 {
		t.Errorf("close = %s", close1)
	}
	if b.Close() != nil {
		t.Error("Close with no open scope should return nil")
	}
}

func TestScopeBuilderCloseAll(t *testing.T) {
	var b ScopeBuilder
	b.Open(ScopeClip, nil)
	b.Open(ScopeEnsemble, nil)
	recs := b.CloseAll()
	if len(recs) != 2 || recs[0].ScopeType != ScopeEnsemble || recs[1].ScopeType != ScopeClip {
		t.Errorf("CloseAll = %v", recs)
	}
	if b.Depth() != 0 {
		t.Error("builder not reset")
	}
}

// Property: any randomly generated balanced scope sequence is accepted, and
// the tracker depth returns to zero.
func TestQuickBalancedSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		tr := NewTracker()
		depth := 0
		steps := rng.Intn(60)
		for i := 0; i < steps; i++ {
			switch {
			case depth == 0 || (rng.Intn(2) == 0 && depth < 10):
				r := NewOpenScope(ScopeType(rng.Intn(5)), uint16(depth))
				if err := tr.Observe(r); err != nil {
					t.Fatalf("trial %d: open rejected: %v", trial, err)
				}
				depth++
			default:
				top, _ := tr.Top()
				var r *Record
				if rng.Intn(4) == 0 {
					r = NewBadCloseScope(top.Type, top.Depth)
				} else {
					r = NewCloseScope(top.Type, top.Depth)
				}
				if err := tr.Observe(r); err != nil {
					t.Fatalf("trial %d: close rejected: %v", trial, err)
				}
				depth--
			}
			if tr.Depth() != depth {
				t.Fatalf("trial %d: tracker depth %d, want %d", trial, tr.Depth(), depth)
			}
		}
		for _, r := range tr.CloseAll() {
			_ = r
		}
		if tr.Depth() != 0 {
			t.Fatalf("trial %d: CloseAll left depth %d", trial, tr.Depth())
		}
	}
}

func mustObserve(t *testing.T, tr *Tracker, r *Record) {
	t.Helper()
	if err := tr.Observe(r); err != nil {
		t.Fatalf("Observe(%s): %v", r, err)
	}
}
