package record

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// Fuzz targets for the wire codec. FuzzReader throws arbitrary bytes at
// the decoder — it must terminate without panicking and without handing
// back invalid records, whatever the input claims about lengths, counts,
// or checksums. FuzzBatchRoundTrip fuzzes the field space and checks
// both framings decode back to the exact input. Seed corpus lives in
// testdata/fuzz/ (regenerate with -update-golden); CI runs each target
// briefly on every push.

// fuzzReaderSeeds returns the committed seed inputs for FuzzReader:
// well-formed streams in both framings plus mutations that aim at each
// validation branch (bad magic, bad header CRC, bad batch CRC, torn
// frame, absurd lengths).
func fuzzReaderSeeds(t testing.TB) [][]byte {
	recs := v2TestRecords(4)
	v1 := AppendWire(nil, recs[0])
	v1 = AppendWire(v1, recs[1])
	v2 := AppendBatchWire(nil, recs...)
	mixed := append(append([]byte{}, v1...), v2...)

	badBatchCRC := append([]byte{}, v2...)
	badBatchCRC[len(badBatchCRC)-1] ^= 0xFF
	badHdrCRC := append([]byte{}, v2...)
	badHdrCRC[10] ^= 0xFF
	badLen := append([]byte{}, v2...)
	putU32(badLen[6:], 0xFFFFFFFF)
	torn := v2[:len(v2)/2]
	garbagePrefix := append([]byte("DRVX\x00\x01garbage DRV"), v2...)

	return [][]byte{
		v1, v2, mixed, badBatchCRC, badHdrCRC, badLen, torn, garbagePrefix,
		[]byte("DRV1"), []byte("DRV2"), {},
	}
}

func FuzzReader(f *testing.F) {
	for _, s := range fuzzReaderSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, mode := range []struct {
			strict, pooled bool
		}{{false, false}, {false, true}, {true, false}} {
			rd := NewReaderSize(bytes.NewReader(data), 512)
			rd.SetStrict(mode.strict)
			rd.SetPooled(mode.pooled)
			for i := 0; i <= len(data); i++ { // decoder must terminate
				r, err := rd.Read()
				if err != nil {
					break
				}
				if !r.Kind.Valid() || len(r.Payload) > MaxPayload {
					t.Fatalf("decoder produced invalid record: %+v", r)
				}
				if mode.pooled {
					Release(r)
				}
			}
		}
	})
}

func FuzzBatchRoundTrip(f *testing.F) {
	f.Add([]byte("pcm"), []byte(""), uint16(1), uint64(42), uint32(7))
	f.Add([]byte{}, bytes.Repeat([]byte{0xA5}, 5000), uint16(4), uint64(0), uint32(0xFFFFFFFF))
	f.Add([]byte{0, 1}, []byte{2, 3}, uint16(100), uint64(1<<60), uint32(1))
	f.Fuzz(func(t *testing.T, p1, p2 []byte, subtype uint16, seq uint64, src uint32) {
		in := []*Record{
			{Kind: KindData, Subtype: subtype, Scope: 1, ScopeType: ScopeClip,
				Seq: seq, SourceID: src, PayloadType: PayloadBytes, Payload: p1},
			{Kind: KindCloseScope, Subtype: subtype, Scope: 1, ScopeType: ScopeClip,
				Seq: seq + 1, SourceID: src, PayloadType: PayloadNone, Payload: p2},
		}
		var v1 []byte
		for _, r := range in {
			v1 = AppendWire(v1, r)
		}
		v2 := AppendBatchWire(nil, in...)
		for name, wire := range map[string][]byte{"v1": v1, "v2": v2} {
			rd := NewReader(bytes.NewReader(wire))
			rd.SetStrict(true)
			for i, want := range in {
				got, err := rd.Read()
				if err != nil {
					t.Fatalf("%s decode %d: %v", name, i, err)
				}
				sameRecord(t, got, want, i)
			}
			if _, err := rd.Read(); !errors.Is(err, io.EOF) {
				t.Fatalf("%s trailing: %v", name, err)
			}
		}
	})
}

// TestFuzzCorpusCommitted regenerates (under -update-golden) and then
// verifies the committed seed-corpus files, so the seeds evolve with the
// format instead of rotting.
func TestFuzzCorpusCommitted(t *testing.T) {
	writeSeed := func(dir, name string, args ...any) {
		path := filepath.Join("testdata", "fuzz", dir, name)
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			buf.WriteString("go test fuzz v1\n")
			for _, a := range args {
				switch v := a.(type) {
				case []byte:
					fmt.Fprintf(&buf, "[]byte(%q)\n", v)
				default:
					fmt.Fprintf(&buf, "%T(%v)\n", v, v)
				}
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := os.Stat(path); err != nil {
			t.Errorf("missing committed fuzz seed: %v (run with -update-golden)", err)
		}
	}
	for i, s := range fuzzReaderSeeds(t) {
		writeSeed("FuzzReader", fmt.Sprintf("seed_%02d", i), s)
	}
	writeSeed("FuzzBatchRoundTrip", "seed_00",
		[]byte("pcm"), []byte(""), uint16(1), uint64(42), uint32(7))
	writeSeed("FuzzBatchRoundTrip", "seed_01",
		[]byte{}, bytes.Repeat([]byte{0xA5}, 5000), uint16(4), uint64(0), uint32(0xFFFFFFFF))
}
