package record

import "hash/fnv"

// Replicated-segment sequence annotation.
//
// A replication splitter tags every record it fans out with a stream
// identity and a monotonically increasing sequence number so the merger at
// the other end can deduplicate the N replica copies back into
// exactly-once output. The annotation rides entirely in the existing Seq
// and SourceID wire fields — SourceID carries the replication stream
// identity, Seq packs a 16-bit splitter epoch above a 48-bit counter — so
// tagged records are wire-compatible with every existing reader: a
// consumer that knows nothing about replication just sees ordinary
// sequence numbers.

// ReplicaSeqBits is the width of the per-epoch counter packed into the low
// bits of Seq; the splitter epoch occupies the 16 bits above it.
const ReplicaSeqBits = 48

// replicaSeqMask masks the counter portion of a packed Seq.
const replicaSeqMask = (uint64(1) << ReplicaSeqBits) - 1

// ReplicaStreamID derives the stable, nonzero stream identity of a
// replicated segment group from its name. Splitter and merger derive it
// independently, so only records tagged by the group's own splitter are
// eligible for dedup at its merger; anything else (scope repairs a dying
// replica leg synthesized for itself, a misrouted stream) reads as
// untagged and is discarded there.
func ReplicaStreamID(group string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte("replica:" + group))
	if id := h.Sum32(); id != 0 {
		return id
	}
	return 1
}

// ShardStreamID derives the stable, nonzero stream identity of a sharded
// segment group from its name. The "shard:" prefix keeps the namespace
// disjoint from replica groups, so a shard collector never deduplicates a
// replica splitter's stream (or vice versa) even when the two groups share
// a segment name. Sharded streams reuse the same Seq/SourceID packing as
// replication (TagReplica/ReplicaTag) and are therefore wire-compatible
// with every existing reader.
func ShardStreamID(group string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte("shard:" + group))
	if id := h.Sum32(); id != 0 {
		return id
	}
	return 1
}

// TagReplica annotates r as record n of the given replication stream and
// splitter epoch, overwriting Seq and SourceID. n wraps at 2^48, far
// beyond any stream a single splitter incarnation produces.
func TagReplica(r *Record, stream uint32, epoch uint16, n uint64) {
	r.SourceID = stream
	r.Seq = uint64(epoch)<<ReplicaSeqBits | (n & replicaSeqMask)
}

// ReplicaTag extracts the replication annotation from r. ok is false when
// r does not carry a tag for the given stream.
func ReplicaTag(r *Record, stream uint32) (epoch uint16, n uint64, ok bool) {
	if stream == 0 || r.SourceID != stream {
		return 0, 0, false
	}
	return uint16(r.Seq >> ReplicaSeqBits), r.Seq & replicaSeqMask, true
}
