package timeseries

import (
	"math"
	"testing"
)

func TestStreamingZScoreFlagsShift(t *testing.T) {
	z := NewStreamingZScore(0.2, 10)
	// Steady baseline around 10 with small wiggle.
	for i := 0; i < 40; i++ {
		x := 10.0
		if i%2 == 0 {
			x = 10.5
		}
		score, warm := z.Push(x)
		if i >= 10 && !warm {
			t.Fatalf("not warm after %d samples", i+1)
		}
		if i >= 10 && math.Abs(score) > 3 {
			t.Fatalf("baseline sample %d scored %.2f", i, score)
		}
	}
	// A level shift must score high on its FIRST appearance (scored
	// against the pre-shift baseline).
	score, warm := z.Push(100)
	if !warm {
		t.Fatal("detector should be warm")
	}
	if score < 4 {
		t.Fatalf("level shift scored only %.2f", score)
	}
}

func TestStreamingZScoreFlatSeriesNoExplosion(t *testing.T) {
	z := NewStreamingZScore(0.1, 5)
	for i := 0; i < 20; i++ {
		z.Push(7)
	}
	// Variance is zero; the sigma floor must keep a tiny wiggle finite
	// and modest relative to the mean-scaled floor.
	score, _ := z.Push(7.0000001)
	if math.IsInf(score, 0) || math.IsNaN(score) {
		t.Fatalf("flat series produced score %v", score)
	}
	if math.Abs(score) > 1 {
		t.Fatalf("negligible wiggle on flat series scored %.4f", score)
	}
	// Even a genuinely huge jump stays clamped.
	score, _ = z.Push(1e30)
	if score > 1e6 {
		t.Fatalf("score %v exceeds clamp", score)
	}
}

func TestStreamingZScoreMinSigmaFloor(t *testing.T) {
	// A flat ZERO baseline has a near-zero relative floor, so without
	// MinSigma a one-unit wiggle scores astronomically.
	z := NewStreamingZScore(0.1, 5)
	for i := 0; i < 20; i++ {
		z.Push(0)
	}
	if score, _ := z.Push(1); score < 1e5 {
		t.Fatalf("zero-baseline wiggle scored %.2f; expected near-clamp without a floor", score)
	}
	// With an absolute floor of 4 units, the same wiggle is sub-threshold
	// noise and only a genuinely large excursion flags.
	z = NewStreamingZScore(0.1, 5)
	z.MinSigma = 4
	for i := 0; i < 20; i++ {
		z.Push(0)
	}
	if score, _ := z.Push(1); score > 1 {
		t.Fatalf("one-unit wiggle scored %.2f with MinSigma 4", score)
	}
	if score, _ := z.Push(100); score < 4 {
		t.Fatalf("large excursion scored only %.2f with MinSigma 4", score)
	}

	// PushFloor sticks the floor to the set's series.
	s := NewZScoreSet(0.1, 3)
	for i := 0; i < 10; i++ {
		s.PushFloor("n1/queue_depth", 0, 4)
	}
	if score, warm := s.Push("n1/queue_depth", 2); !warm || score > 1 {
		t.Fatalf("floor did not stick: score=%.2f warm=%v", score, warm)
	}
}

func TestStreamingZScoreFirstSampleAndReset(t *testing.T) {
	z := NewStreamingZScore(0.3, 3)
	score, warm := z.Push(42)
	if score != 0 || warm {
		t.Fatalf("first sample = (%.2f, %v), want (0, false)", score, warm)
	}
	if z.Seen() != 1 {
		t.Fatalf("Seen = %d", z.Seen())
	}
	z.Reset()
	if z.Seen() != 0 {
		t.Fatal("Reset did not clear count")
	}
	score, warm = z.Push(1000)
	if score != 0 || warm {
		t.Fatalf("post-reset first sample = (%.2f, %v), want (0, false)", score, warm)
	}
}

func TestZScoreSetRoutesAndForgets(t *testing.T) {
	s := NewZScoreSet(0.2, 3)
	for i := 0; i < 10; i++ {
		s.Push("n1/queue_depth", 5)
		s.Push("n2/queue_depth", 50)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	// n1's baseline is 5; seeing 50 there is anomalous even though n2
	// sees 50 all the time — the series must be independent.
	score, warm := s.Push("n1/queue_depth", 50)
	if !warm || score < 4 {
		t.Fatalf("cross-series contamination: score=%.2f warm=%v", score, warm)
	}
	score, warm = s.Push("n2/queue_depth", 50)
	if !warm || math.Abs(score) > 1 {
		t.Fatalf("n2 baseline broken: score=%.2f warm=%v", score, warm)
	}
	s.Forget("n1/")
	if s.Len() != 1 {
		t.Fatalf("Forget left %d series", s.Len())
	}
	// Recreated series starts cold.
	if _, warm := s.Push("n1/queue_depth", 5); warm {
		t.Fatal("forgotten series came back warm")
	}
}
