package timeseries

import (
	"math/rand"
	"testing"
)

// TestCUSUMDetectsSmallSustainedShift drives a noisy baseline followed
// by a shift too small for any single sample to stand out: CUSUM must
// stay quiet on the baseline and alarm within the shifted region.
func TestCUSUMDetectsSmallSustainedShift(t *testing.T) {
	c, err := NewCUSUM(0.05, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		if _, alarm := c.Push(10 + rng.NormFloat64()); alarm {
			t.Fatalf("false alarm on baseline at sample %d", i)
		}
	}
	// +1.5 sigma sustained: each sample contributes ~1 sigma beyond the
	// 0.5 slack, so the sum crosses H=5 within a handful of samples.
	alarmAt := -1
	for i := 0; i < 60; i++ {
		if _, alarm := c.Push(11.5 + rng.NormFloat64()); alarm {
			alarmAt = i
			break
		}
	}
	if alarmAt < 0 {
		t.Fatal("sustained +1.5 sigma shift never alarmed")
	}
	if alarmAt > 30 {
		t.Errorf("alarm took %d shifted samples; want prompt detection", alarmAt)
	}
}

// TestCUSUMNegativeShiftAndStatSign checks the two-sided behavior: a
// downward shift alarms too, and the statistic reports it negative.
func TestCUSUMNegativeShiftAndStatSign(t *testing.T) {
	c, err := NewCUSUM(0.05, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		c.Push(5 + 0.5*rng.NormFloat64())
	}
	var lastStat float64
	alarmed := false
	for i := 0; i < 60 && !alarmed; i++ {
		lastStat, alarmed = c.Push(3.5 + 0.5*rng.NormFloat64())
	}
	if !alarmed {
		t.Fatal("downward shift never alarmed")
	}
	if lastStat >= 0 {
		t.Errorf("downward shift reported non-negative stat %g", lastStat)
	}
	// The alarm resets the sums: the very next quiet sample cannot re-alarm.
	if _, alarm := c.Push(5); alarm {
		t.Error("sums not reset after alarm")
	}
}

// TestCUSUMWarmupAndMinSigma locks two guardrails: no alarm can fire
// inside the warmup window however extreme the input, and MinSigma
// keeps a perfectly flat baseline from amplifying a trivial blip into
// an alarm.
func TestCUSUMWarmupAndMinSigma(t *testing.T) {
	c, err := NewCUSUM(0.1, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, alarm := c.Push(float64(i * 1000)); alarm {
			t.Fatalf("alarm during warmup at sample %d", i)
		}
	}

	// Flat baseline at 0 with a floor of 10: a wiggle of 2 stays well
	// inside one floored sigma minus slack and must never accumulate an
	// alarm; without the floor the relative sigma is ~1e-6 and a single
	// wiggle would alarm instantly.
	flat, err := NewCUSUM(0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	flat.MinSigma = 10
	for i := 0; i < 100; i++ {
		if _, alarm := flat.Push(0); alarm {
			t.Fatal("flat baseline alarmed")
		}
	}
	for i := 0; i < 20; i++ {
		if _, alarm := flat.Push(2); alarm {
			t.Fatalf("sub-floor wiggle alarmed at sample %d", i)
		}
	}
}

// TestPageHinkleyDetectsUpwardShift mirrors the CUSUM shift test for
// Page-Hinkley: quiet on baseline, alarm on a sustained upward shift,
// accumulator reset after the alarm.
func TestPageHinkleyDetectsUpwardShift(t *testing.T) {
	p, err := NewPageHinkley(0.05, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		if _, alarm := p.Push(100 + 5*rng.NormFloat64()); alarm {
			t.Fatalf("false alarm on baseline at sample %d", i)
		}
	}
	alarmAt := -1
	for i := 0; i < 80; i++ {
		if _, alarm := p.Push(110 + 5*rng.NormFloat64()); alarm {
			alarmAt = i
			break
		}
	}
	if alarmAt < 0 {
		t.Fatal("sustained +2 sigma shift never alarmed")
	}
	if _, alarm := p.Push(100); alarm {
		t.Error("accumulator not reset after alarm")
	}
}

// TestPageHinkleyIgnoresDownwardShift documents the one-sidedness: the
// test watches for upward shifts only, so a drop (e.g. load going away)
// never alarms.
func TestPageHinkleyIgnoresDownwardShift(t *testing.T) {
	p, err := NewPageHinkley(0.05, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		p.Push(50 + rng.NormFloat64())
	}
	for i := 0; i < 200; i++ {
		if _, alarm := p.Push(40 + rng.NormFloat64()); alarm {
			t.Fatalf("downward shift alarmed at sample %d", i)
		}
	}
}

// TestPageHinkleyMinSigmaOnFlatThenStep is the flat-then-step baseline
// edge case: a series pinned at an exact constant (sigma 0) that steps
// by less than MinSigma must stay quiet, while a step well beyond the
// floor must alarm.
func TestPageHinkleyMinSigmaOnFlatThenStep(t *testing.T) {
	quiet, err := NewPageHinkley(0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	quiet.MinSigma = 8
	for i := 0; i < 50; i++ {
		quiet.Push(0)
	}
	for i := 0; i < 30; i++ {
		if _, alarm := quiet.Push(1); alarm {
			t.Fatalf("sub-floor step alarmed at sample %d", i)
		}
	}

	loud, err := NewPageHinkley(0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	loud.MinSigma = 8
	for i := 0; i < 50; i++ {
		loud.Push(0)
	}
	alarmed := false
	for i := 0; i < 30 && !alarmed; i++ {
		_, alarmed = loud.Push(100)
	}
	if !alarmed {
		t.Fatal("a 12.5-sigma step over the floor never alarmed")
	}
}
