package timeseries

import (
	"math"
	"math/rand"
	"testing"
)

// referenceScores recomputes the detector's output naively: symbolize every
// sample with the same running normalization, then for each t build lag and
// lead bitmaps from scratch.
func referenceScores(series []float64, cfg AnomalyConfig) []float64 {
	sax, err := NewSAX(cfg.Alphabet)
	if err != nil {
		panic(err)
	}
	var norm Welford
	symbols := make([]int, len(series))
	for i, x := range series {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = norm.Mean()
		}
		norm.Add(x)
		var z float64
		if s := norm.StdDev(); s >= zNormEps {
			z = (x - norm.Mean()) / s
		}
		symbols[i] = sax.Symbol(z)
	}
	w, g := cfg.Window, cfg.Gram
	out := make([]float64, len(series))
	for t := range series {
		if t+1 < 2*w {
			continue
		}
		lead, _ := NewBitmap(cfg.Alphabet, g)
		lag, _ := NewBitmap(cfg.Alphabet, g)
		lead.AddWord(symbols[t+1-w : t+1])
		lag.AddWord(symbols[t+1-2*w : t+1-w])
		d, _ := BitmapDistance(lag, lead)
		out[t] = d
	}
	return out
}

func TestAnomalyDetectorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfgs := []AnomalyConfig{
		{Alphabet: 4, Window: 8, Gram: 1},
		{Alphabet: 4, Window: 8, Gram: 2},
		{Alphabet: 8, Window: 16, Gram: 2},
		{Alphabet: 8, Window: 10, Gram: 3},
		{Alphabet: 3, Window: 5, Gram: 4},
	}
	for _, cfg := range cfgs {
		series := make([]float64, 300)
		for i := range series {
			series[i] = rng.NormFloat64()
			if i > 150 && i < 200 {
				series[i] += 4 * math.Sin(float64(i)*0.7) // injected event
			}
		}
		got, err := Scores(series, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceScores(series, cfg)
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-9) {
				t.Fatalf("cfg %+v: score[%d] = %v, reference %v", cfg, i, got[i], want[i])
			}
		}
	}
}

func TestAnomalyDetectorWarmup(t *testing.T) {
	d, err := NewAnomalyDetector(AnomalyConfig{Alphabet: 4, Window: 10, Gram: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 19; i++ {
		if _, ok := d.Push(rng.NormFloat64()); ok {
			t.Fatalf("detector warm after %d samples", i+1)
		}
		if d.Warm() {
			t.Fatalf("Warm() true after %d samples", i+1)
		}
	}
	if _, ok := d.Push(rng.NormFloat64()); !ok {
		t.Error("detector should be warm after 2*Window samples")
	}
	if !d.Warm() {
		t.Error("Warm() should be true")
	}
}

func TestAnomalyDetectorDetectsChange(t *testing.T) {
	// Steady noise, then a loud structured tone: the score during the tone
	// onset should exceed the steady-state score by a wide margin.
	rng := rand.New(rand.NewSource(8))
	cfg := AnomalyConfig{Alphabet: 8, Window: 100, Gram: 2}
	const n = 4000
	series := make([]float64, n)
	for i := range series {
		series[i] = rng.NormFloat64() * 0.1
		if i >= 2000 && i < 2600 {
			series[i] += 2 * math.Sin(2*math.Pi*float64(i)/20)
		}
	}
	scores, err := Scores(series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var steady, onset float64
	for i := 1000; i < 1900; i++ {
		steady = math.Max(steady, scores[i])
	}
	for i := 2050; i < 2300; i++ {
		onset = math.Max(onset, scores[i])
	}
	if onset < steady*2 {
		t.Errorf("onset score %v not clearly above steady max %v", onset, steady)
	}
}

func TestAnomalyDetectorHandlesNaNInf(t *testing.T) {
	d, err := NewAnomalyDetector(AnomalyConfig{Alphabet: 4, Window: 5, Gram: 2})
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{1, math.NaN(), 2, math.Inf(1), 3, math.Inf(-1), 4, 5, 6, 7, 8, 9, 10}
	for _, x := range vals {
		s, _ := d.Push(x)
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("score became non-finite after pushing %v", x)
		}
	}
}

func TestAnomalyDetectorConstantSignal(t *testing.T) {
	d, _ := NewAnomalyDetector(AnomalyConfig{Alphabet: 8, Window: 10, Gram: 2})
	for i := 0; i < 100; i++ {
		s, ok := d.Push(5.0)
		if ok && s != 0 {
			t.Fatalf("constant signal should score 0, got %v", s)
		}
	}
}

func TestAnomalyConfigValidation(t *testing.T) {
	if _, err := NewAnomalyDetector(AnomalyConfig{Alphabet: 8, Window: 2, Gram: 3}); err == nil {
		t.Error("gram > window should be rejected")
	}
	if _, err := NewAnomalyDetector(AnomalyConfig{Alphabet: 1, Window: 10, Gram: 1}); err == nil {
		t.Error("alphabet 1 should be rejected")
	}
	d, err := NewAnomalyDetector(AnomalyConfig{})
	if err != nil {
		t.Fatalf("zero config should apply defaults: %v", err)
	}
	cfg := d.Config()
	if cfg.Alphabet != 8 || cfg.Window != 100 || cfg.Gram != 1 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestDefaultAnomalyConfigMatchesPaper(t *testing.T) {
	cfg := DefaultAnomalyConfig()
	if cfg.Alphabet != 8 {
		t.Errorf("paper uses SAX alphabet 8, got %d", cfg.Alphabet)
	}
	if cfg.Window != 100 {
		t.Errorf("paper uses anomaly window 100, got %d", cfg.Window)
	}
}

// Property: scores are always in [0, sqrt(2)] and finite for arbitrary
// finite input.
func TestQuickAnomalyScoreBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		cfg := AnomalyConfig{
			Alphabet: 2 + rng.Intn(10),
			Window:   4 + rng.Intn(30),
			Gram:     1 + rng.Intn(3),
		}
		d, err := NewAnomalyDetector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			x := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)-3))
			s, ok := d.Push(x)
			if !ok {
				continue
			}
			if s < 0 || s > math.Sqrt2+1e-9 || math.IsNaN(s) {
				t.Fatalf("trial %d cfg %+v: score %v out of range", trial, cfg, s)
			}
		}
	}
}

func BenchmarkAnomalyDetectorPush(b *testing.B) {
	d, err := NewAnomalyDetector(DefaultAnomalyConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 4096)
	for i := range samples {
		samples[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Push(samples[i&4095])
	}
}
