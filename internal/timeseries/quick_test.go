package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: EWStats mean always lies within the observed min/max, and
// variance is non-negative.
func TestQuickEWStatsBounds(t *testing.T) {
	f := func(raw []int16, alphaSel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		alpha := float64(alphaSel%100+1) / 100
		e, err := NewEWStats(alpha)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			x := float64(r) / 64
			e.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if e.Count() != uint64(len(raw)) {
			return false
		}
		return e.Mean() >= lo-1e-9 && e.Mean() <= hi+1e-9 && e.Variance() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEWStatsAlphaValidation(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.5} {
		if _, err := NewEWStats(a); err == nil {
			t.Errorf("alpha %v should be rejected", a)
		}
	}
	e, err := NewEWStats(1)
	if err != nil {
		t.Fatal(err)
	}
	e.Add(5)
	e.Add(9)
	// Alpha 1: mean tracks the latest observation exactly.
	if e.Mean() != 9 {
		t.Errorf("alpha=1 mean = %v, want 9", e.Mean())
	}
	e.Reset()
	if e.Count() != 0 || e.Mean() != 0 || e.StdDev() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestEWStatsConvergesToNewRegime(t *testing.T) {
	e, _ := NewEWStats(0.01)
	for i := 0; i < 2000; i++ {
		e.Add(10)
	}
	for i := 0; i < 2000; i++ {
		e.Add(20)
	}
	if math.Abs(e.Mean()-20) > 0.01 {
		t.Errorf("EW mean %v did not converge to new regime 20", e.Mean())
	}
	// Welford, by contrast, remembers the old regime forever.
	var w Welford
	for i := 0; i < 2000; i++ {
		w.Add(10)
	}
	for i := 0; i < 2000; i++ {
		w.Add(20)
	}
	if math.Abs(w.Mean()-15) > 0.01 {
		t.Errorf("Welford mean = %v, want 15", w.Mean())
	}
}

// Property: PAAReduce output length is ceil(n/factor) and values are
// bounded by input extrema.
func TestQuickPAAReduceShape(t *testing.T) {
	f := func(raw []int16, fSel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		factor := 1 + int(fSel)%16
		in := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			in[i] = float64(r)
			lo = math.Min(lo, in[i])
			hi = math.Max(hi, in[i])
		}
		out, err := PAAReduce(in, factor)
		if err != nil {
			return false
		}
		want := (len(in) + factor - 1) / factor
		if len(out) != want {
			return false
		}
		for _, v := range out {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SAX words always contain symbols in [0, alphabet).
func TestQuickSAXSymbolRange(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		a := 2 + rng.Intn(30)
		s, err := NewSAX(a)
		if err != nil {
			t.Fatal(err)
		}
		n := 2 + rng.Intn(100)
		series := make([]float64, n)
		for i := range series {
			series[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
		}
		w := 1 + rng.Intn(n)
		word, err := s.Word(series, w)
		if err != nil {
			t.Fatal(err)
		}
		for _, sym := range word {
			if sym < 0 || sym >= a {
				t.Fatalf("symbol %d outside [0, %d)", sym, a)
			}
		}
	}
}

// Property: the anomaly detector is deterministic — the same series gives
// the same scores.
func TestQuickAnomalyDeterministic(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 30 {
			return true
		}
		series := make([]float64, len(raw))
		for i, r := range raw {
			series[i] = float64(r)
		}
		cfg := AnomalyConfig{Alphabet: 4, Window: 8, Gram: 1}
		a, err := Scores(series, cfg)
		if err != nil {
			return false
		}
		b, _ := Scores(series, cfg)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
