package timeseries

import (
	"fmt"
	"math"
)

// AnomalyConfig parameterizes the streaming SAX-bitmap anomaly detector.
// The defaults reproduce the settings the paper used for environmental
// acoustics: alphabet 8, anomaly window 100 samples, bigram bitmaps.
type AnomalyConfig struct {
	// Alphabet is the SAX alphabet size (paper: 8).
	Alphabet int
	// Window is the number of samples per bitmap; the detector compares a
	// "lag" bitmap over samples [t-2W+1, t-W] with a "lead" bitmap over
	// [t-W+1, t] (paper: 100).
	Window int
	// Gram is the symbolic subsequence length counted in each bitmap
	// (Kumar et al. use 1-3 symbols; default 1 — see DefaultAnomalyConfig).
	Gram int
}

// DefaultAnomalyConfig returns the paper's parameters: alphabet 8 and a
// 100-sample anomaly window. Unigram bitmaps are the default because the
// 100-sample window supports only ~100 gram observations: 8 cells give a
// stable frequency estimate where 64 bigram cells drown the signal in
// sampling noise (see BenchmarkAblationSAXParams for the sweep).
func DefaultAnomalyConfig() AnomalyConfig {
	return AnomalyConfig{Alphabet: 8, Window: 100, Gram: 1}
}

func (c *AnomalyConfig) validate() error {
	if c.Alphabet == 0 {
		c.Alphabet = 8
	}
	if c.Window == 0 {
		c.Window = 100
	}
	if c.Gram == 0 {
		c.Gram = 1
	}
	if c.Window < 0 {
		return ErrBadWindow
	}
	if c.Gram > c.Window {
		return fmt.Errorf("timeseries: gram %d exceeds window %d", c.Gram, c.Window)
	}
	return nil
}

// AnomalyDetector computes a streaming SAX-bitmap anomaly score: each
// incoming sample is symbolized against running signal statistics, and the
// score at time t is the Euclidean distance between the bitmap of the most
// recent W symbols (the "lead" window) and the bitmap of the W symbols
// before those (the "lag" window). A distinct change in signal behaviour —
// the onset of a bird vocalization over steady ambient noise — drives the
// two bitmaps apart.
//
// Both bitmaps are maintained incrementally, so Push costs O(a^g) for the
// distance computation and O(g) for window maintenance, independent of the
// window size. A single scan of the time series therefore suffices, which
// is what makes ensemble extraction viable on unbounded streams.
//
// AnomalyDetector is not safe for concurrent use.
type AnomalyDetector struct {
	cfg  AnomalyConfig
	sax  *SAX
	lag  *Bitmap
	lead *Bitmap

	// ring holds the last 2W+1 symbols so the gram departing the lag
	// window (whose oldest symbol has age 2W) is still addressable.
	ring []int
	head int // next write position
	seen uint64

	buf  []int // gram scratch, len = cfg.Gram
	norm Welford
}

// NewAnomalyDetector returns a detector with the given configuration.
func NewAnomalyDetector(cfg AnomalyConfig) (*AnomalyDetector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sax, err := NewSAX(cfg.Alphabet)
	if err != nil {
		return nil, err
	}
	lag, err := NewBitmap(cfg.Alphabet, cfg.Gram)
	if err != nil {
		return nil, err
	}
	lead, _ := NewBitmap(cfg.Alphabet, cfg.Gram)
	return &AnomalyDetector{
		cfg:  cfg,
		sax:  sax,
		lag:  lag,
		lead: lead,
		ring: make([]int, 2*cfg.Window+1),
		buf:  make([]int, cfg.Gram),
	}, nil
}

// Config returns the detector's configuration (with defaults resolved).
func (d *AnomalyDetector) Config() AnomalyConfig { return d.cfg }

// Warm reports whether the detector has seen enough samples (2*Window) to
// produce scores.
func (d *AnomalyDetector) Warm() bool { return d.seen >= uint64(2*d.cfg.Window) }

// symbolAt returns the symbol at logical age i: age 0 is the newest
// symbol, age 1 the one before it, and so on. Valid for age < min(seen,
// len(ring)).
func (d *AnomalyDetector) symbolAt(age int) int {
	n := len(d.ring)
	idx := d.head - 1 - age
	idx = ((idx % n) + n) % n
	return d.ring[idx]
}

// gramAt fills d.buf with the gram whose newest symbol has the given age:
// buf[g-1] is the symbol at age, buf[0] the symbol at age+g-1.
func (d *AnomalyDetector) gramAt(age int) []int {
	g := d.cfg.Gram
	for k := 0; k < g; k++ {
		d.buf[g-1-k] = d.symbolAt(age + k)
	}
	return d.buf
}

// Push feeds one sample and returns the current anomaly score. ok is false
// until the detector is warm. NaN and infinite samples are treated as the
// running mean (symbolized mid-scale) so corrupt readings do not poison
// the window.
func (d *AnomalyDetector) Push(x float64) (score float64, ok bool) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		x = d.norm.Mean()
	}
	d.norm.Add(x)
	sigma := d.norm.StdDev()
	var z float64
	if sigma >= zNormEps {
		z = (x - d.norm.Mean()) / sigma
	}
	sym := d.sax.Symbol(z)

	w, g := d.cfg.Window, d.cfg.Gram
	d.ring[d.head] = sym
	d.head = (d.head + 1) % len(d.ring)
	d.seen++

	switch {
	case d.seen < uint64(2*w):
		return 0, false
	case d.seen == uint64(2*w):
		d.rebuild()
	default:
		// The windows slid by one symbol. In ages relative to the new
		// newest symbol (age 0), the lead window covers ages [0, W-1] and
		// contains grams at ages [0, W-g]; the lag window covers
		// [W, 2W-1] with grams at ages [W, 2W-g].
		d.lead.Inc(d.gramAt(0))         // entered lead
		d.lead.Dec(d.gramAt(w - g + 1)) // left lead
		d.lag.Inc(d.gramAt(w))          // entered lag
		d.lag.Dec(d.gramAt(2*w - g + 1) /* left lag */)
	}
	s, err := BitmapDistance(d.lag, d.lead)
	if err != nil {
		// Shapes are fixed at construction; this cannot happen.
		panic("timeseries: AnomalyDetector: " + err.Error())
	}
	return s, true
}

// rebuild recomputes both bitmaps from the ring at first full occupancy.
func (d *AnomalyDetector) rebuild() {
	w, g := d.cfg.Window, d.cfg.Gram
	d.lag.Reset()
	d.lead.Reset()
	for a := 0; a+g <= w; a++ {
		d.lead.Inc(d.gramAt(a))
	}
	for a := w; a+g <= 2*w; a++ {
		d.lag.Inc(d.gramAt(a))
	}
}

// Scores runs the detector over a whole series and returns one score per
// sample; samples before warm-up score 0. It is a convenience for batch
// analysis and testing — streaming callers should use Push.
func Scores(series []float64, cfg AnomalyConfig) ([]float64, error) {
	d, err := NewAnomalyDetector(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(series))
	for i, x := range series {
		if s, ok := d.Push(x); ok {
			out[i] = s
		}
	}
	return out, nil
}
