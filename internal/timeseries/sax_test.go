package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestBreakpointsKnownValues(t *testing.T) {
	// Standard SAX breakpoint tables (Lin et al. 2003).
	tests := []struct {
		alphabet int
		want     []float64
	}{
		{2, []float64{0}},
		{3, []float64{-0.43, 0.43}},
		{4, []float64{-0.67, 0, 0.67}},
		{5, []float64{-0.84, -0.25, 0.25, 0.84}},
		{8, []float64{-1.15, -0.67, -0.32, 0, 0.32, 0.67, 1.15}},
	}
	for _, tt := range tests {
		bp, err := Breakpoints(tt.alphabet)
		if err != nil {
			t.Fatalf("Breakpoints(%d): %v", tt.alphabet, err)
		}
		if len(bp) != tt.alphabet-1 {
			t.Fatalf("alphabet %d: %d breakpoints", tt.alphabet, len(bp))
		}
		for i := range tt.want {
			if !almostEqual(bp[i], tt.want[i], 0.01) {
				t.Errorf("alphabet %d bp[%d] = %v, want %v", tt.alphabet, i, bp[i], tt.want[i])
			}
		}
	}
}

func TestBreakpointsSortedAndSymmetric(t *testing.T) {
	for a := MinAlphabet; a <= 20; a++ {
		bp, err := Breakpoints(a)
		if err != nil {
			t.Fatal(err)
		}
		if !sort.Float64sAreSorted(bp) {
			t.Errorf("alphabet %d: breakpoints not sorted: %v", a, bp)
		}
		for i := range bp {
			if !almostEqual(bp[i], -bp[len(bp)-1-i], 1e-8) {
				t.Errorf("alphabet %d: breakpoints not symmetric: %v", a, bp)
				break
			}
		}
	}
}

func TestBreakpointsRange(t *testing.T) {
	for _, a := range []int{0, 1, MaxAlphabet + 1, -3} {
		if _, err := Breakpoints(a); !errors.Is(err, ErrBadAlphabet) {
			t.Errorf("alphabet %d should be rejected, got %v", a, err)
		}
	}
}

func TestNormQuantile(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.8413447, 1}, // Phi(1)
		{0.1586553, -1},
		{0.9772499, 2},
		{0.0013499, -3},
		{0.9999, 3.719},
	}
	for _, tt := range tests {
		if got := normQuantile(tt.p); !almostEqual(got, tt.want, 1e-3) {
			t.Errorf("normQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsInf(normQuantile(0), -1) || !math.IsInf(normQuantile(1), 1) {
		t.Error("quantile at 0/1 should be infinite")
	}
}

func TestSAXSymbol(t *testing.T) {
	s, err := NewSAX(4) // breakpoints ~ -0.67, 0, 0.67
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want int
	}{
		{-2, 0},
		{-0.7, 0},
		{-0.5, 1},
		{-0.001, 1},
		{0.001, 2},
		{0.5, 2},
		{0.7, 3},
		{10, 3},
	}
	for _, tt := range tests {
		if got := s.Symbol(tt.x); got != tt.want {
			t.Errorf("Symbol(%v) = %d, want %d", tt.x, got, tt.want)
		}
	}
	if got := s.Symbol(math.NaN()); got != 2 {
		t.Errorf("NaN should map to middle symbol, got %d", got)
	}
}

func TestSAXWord(t *testing.T) {
	s, err := NewSAX(5)
	if err != nil {
		t.Fatal(err)
	}
	// Ramp: symbols must be non-decreasing after PAA.
	series := make([]float64, 100)
	for i := range series {
		series[i] = float64(i)
	}
	word, err := s.Word(series, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(word) != 10 {
		t.Fatalf("word length %d", len(word))
	}
	for i := 1; i < len(word); i++ {
		if word[i] < word[i-1] {
			t.Errorf("word not monotone for ramp: %v", word)
			break
		}
	}
	if word[0] != 0 || word[len(word)-1] != 4 {
		t.Errorf("ramp should span the alphabet: %v", word)
	}
}

func TestSAXWordErrors(t *testing.T) {
	s, _ := NewSAX(4)
	if _, err := s.Word(nil, 3); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("empty: %v", err)
	}
	if _, err := s.Word([]float64{1, 2}, 5); !errors.Is(err, ErrBadSegments) {
		t.Errorf("w>n: %v", err)
	}
}

func TestSAXAlphabetAccessor(t *testing.T) {
	s, _ := NewSAX(8)
	if s.Alphabet() != 8 {
		t.Errorf("Alphabet = %d", s.Alphabet())
	}
}

func TestNewSAXBadAlphabet(t *testing.T) {
	if _, err := NewSAX(1); err == nil {
		t.Error("alphabet 1 should be rejected")
	}
}

func TestWordOfNormalized(t *testing.T) {
	s, _ := NewSAX(3) // breakpoints ~ ±0.43
	word := s.WordOfNormalized([]float64{-1, 0, 1})
	want := []int{0, 1, 2}
	for i := range want {
		if word[i] != want[i] {
			t.Errorf("WordOfNormalized = %v, want %v", word, want)
			break
		}
	}
}

func TestWordString(t *testing.T) {
	if got := WordString([]int{0, 1, 2}, 3); got != "abc" {
		t.Errorf("WordString = %q, want abc", got)
	}
	if got := WordString([]int{-1, 5}, 3); got != "ac" {
		t.Errorf("WordString with clamping = %q, want ac", got)
	}
	if got := WordString([]int{3, 30}, 40); got != "3 30" {
		t.Errorf("WordString large alphabet = %q", got)
	}
}

func TestMinDistAdjacentSymbolsZero(t *testing.T) {
	s, _ := NewSAX(8)
	d, err := s.MinDist([]int{3, 4, 2}, []int{4, 3, 3}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("adjacent-symbol words should have MinDist 0, got %v", d)
	}
}

func TestMinDistKnown(t *testing.T) {
	s, _ := NewSAX(4) // bps: -0.67, 0, 0.67
	// Symbols 0 and 3: dist = bp[2] - bp[0] = 1.349.
	d, err := s.MinDist([]int{0}, []int{3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 1.349, 0.01) {
		t.Errorf("MinDist = %v, want ~1.349", d)
	}
}

func TestMinDistErrors(t *testing.T) {
	s, _ := NewSAX(4)
	if _, err := s.MinDist([]int{1}, []int{1, 2}, 4); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := s.MinDist(nil, nil, 4); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("empty words: %v", err)
	}
}

// Property: MinDist is symmetric and non-negative.
func TestQuickMinDistSymmetric(t *testing.T) {
	s, _ := NewSAX(8)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(16)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(8)
			b[i] = rng.Intn(8)
		}
		dab, err := s.MinDist(a, b, n*4)
		if err != nil {
			t.Fatal(err)
		}
		dba, _ := s.MinDist(b, a, n*4)
		if !almostEqual(dab, dba, 1e-12) || dab < 0 {
			t.Fatalf("trial %d: MinDist not symmetric/non-negative: %v vs %v", trial, dab, dba)
		}
		daa, _ := s.MinDist(a, a, n*4)
		if daa != 0 {
			t.Fatalf("trial %d: MinDist(a,a) = %v", trial, daa)
		}
	}
}

// Property: on large Gaussian samples, each symbol appears with roughly
// equal probability — the defining property of SAX breakpoints.
func TestSAXEquiprobableSymbols(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, a := range []int{2, 4, 8, 16} {
		s, err := NewSAX(a)
		if err != nil {
			t.Fatal(err)
		}
		const n = 200000
		counts := make([]int, a)
		for i := 0; i < n; i++ {
			counts[s.Symbol(rng.NormFloat64())]++
		}
		want := float64(n) / float64(a)
		for sym, c := range counts {
			if math.Abs(float64(c)-want)/want > 0.05 {
				t.Errorf("alphabet %d: symbol %d frequency %v deviates >5%% from %v", a, sym, c, want)
			}
		}
	}
}
