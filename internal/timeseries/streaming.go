package timeseries

import (
	"math"
	"sync"
)

// StreamingZScore scores each new observation against an exponentially
// weighted estimate of the series' recent mean and spread, then folds the
// observation in. Scoring happens BEFORE the update, so a sudden level
// shift is judged against the pre-shift baseline instead of being
// partially absorbed by it — the property that lets the control plane's
// monitor flag a degrading node on the first anomalous heartbeats.
//
// The detector is the streaming counterpart of the offline SAX-bitmap
// AnomalyDetector: cheap enough to run per node per metric on every
// heartbeat, with O(1) state.
type StreamingZScore struct {
	ew     *EWStats
	warmup int
	seen   int
	// MinSigma is an absolute floor on the standard deviation used for
	// scoring (default 0 — only the relative floor applies). Callers set it
	// to the smallest deviation that is meaningful in the series' units, so
	// a perfectly flat baseline (e.g. an always-empty queue) does not turn
	// a one-unit wiggle into an astronomically significant score.
	MinSigma float64
}

// NewStreamingZScore returns a detector with EWMA smoothing factor alpha
// (clamped into (0, 1]; higher tracks faster) that reports warm only
// after warmup observations — scores before that are returned but should
// not be acted on, since the baseline is still forming.
func NewStreamingZScore(alpha float64, warmup int) *StreamingZScore {
	if warmup < 1 {
		warmup = 1
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.1
	}
	ew, _ := NewEWStats(alpha)
	return &StreamingZScore{ew: ew, warmup: warmup}
}

// Push scores x against the current baseline, folds x in, and returns the
// (signed) z-score plus whether the detector had seen enough history for
// the score to be meaningful. The standard deviation is floored at a
// small absolute epsilon plus a fraction of the mean's magnitude (and at
// MinSigma when set), so a series that has been perfectly flat (variance
// zero) does not turn an infinitesimal wiggle into an infinite score;
// scores are clamped to ±1e6.
func (z *StreamingZScore) Push(x float64) (score float64, warm bool) {
	warm = z.seen >= z.warmup
	if z.seen > 0 {
		sigma := z.ew.StdDev()
		floor := 1e-6 + 0.05*math.Abs(z.ew.Mean())
		if floor < z.MinSigma {
			floor = z.MinSigma
		}
		if sigma < floor {
			sigma = floor
		}
		score = (x - z.ew.Mean()) / sigma
		if score > 1e6 {
			score = 1e6
		} else if score < -1e6 {
			score = -1e6
		}
	}
	z.ew.Add(x)
	z.seen++
	return score, warm
}

// Seen returns how many observations have been folded in.
func (z *StreamingZScore) Seen() int { return z.seen }

// Reset clears the baseline so the next Push starts a fresh series.
func (z *StreamingZScore) Reset() {
	z.ew.Reset()
	z.seen = 0
}

// ZScoreSet multiplexes StreamingZScore detectors over named series —
// one per (node, metric) pair in the monitor's case — creating each lazily
// on first Push. It is safe for concurrent use.
type ZScoreSet struct {
	mu     sync.Mutex
	alpha  float64
	warmup int
	m      map[string]*StreamingZScore
}

// NewZScoreSet returns an empty set whose detectors are created with the
// given alpha and warmup.
func NewZScoreSet(alpha float64, warmup int) *ZScoreSet {
	return &ZScoreSet{alpha: alpha, warmup: warmup, m: make(map[string]*StreamingZScore)}
}

// Push routes x to the named series' detector, creating it if needed.
func (s *ZScoreSet) Push(name string, x float64) (score float64, warm bool) {
	return s.PushFloor(name, x, 0)
}

// PushFloor is Push with an absolute sigma floor for this series (see
// StreamingZScore.MinSigma) — the floor sticks to the detector, so later
// plain Push calls on the same series keep it.
func (s *ZScoreSet) PushFloor(name string, x, minSigma float64) (score float64, warm bool) {
	s.mu.Lock()
	z := s.m[name]
	if z == nil {
		z = NewStreamingZScore(s.alpha, s.warmup)
		s.m[name] = z
	}
	if minSigma > 0 {
		z.MinSigma = minSigma
	}
	score, warm = z.Push(x)
	s.mu.Unlock()
	return score, warm
}

// Forget drops every series whose name has the given prefix — used when a
// node leaves the cluster so a replacement under the same name starts
// with a fresh baseline.
func (s *ZScoreSet) Forget(prefix string) {
	s.mu.Lock()
	for name := range s.m {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			delete(s.m, name)
		}
	}
	s.mu.Unlock()
}

// Len returns the number of live series.
func (s *ZScoreSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
