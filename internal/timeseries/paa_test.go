package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestPAAExactDivision(t *testing.T) {
	series := []float64{1, 3, 5, 7, 2, 4}
	got, err := PAA(series, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 6, 3}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("PAA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPAAIdentity(t *testing.T) {
	series := []float64{4, 2, 9}
	got, err := PAA(series, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range series {
		if got[i] != series[i] {
			t.Errorf("w=n should be identity, got %v", got)
			break
		}
	}
	got[0] = 99
	if series[0] == 99 {
		t.Error("PAA output aliases input")
	}
}

func TestPAASingleSegment(t *testing.T) {
	series := []float64{2, 4, 6}
	got, err := PAA(series, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got[0], 4, 1e-12) {
		t.Errorf("PAA single segment = %v, want 4", got[0])
	}
}

func TestPAAFractionalFrames(t *testing.T) {
	// n=5, w=2: frame length 2.5. Frame 0 = (a + b + 0.5c)/2.5.
	series := []float64{1, 2, 3, 4, 5}
	got, err := PAA(series, 2)
	if err != nil {
		t.Fatal(err)
	}
	want0 := (1 + 2 + 0.5*3) / 2.5
	want1 := (0.5*3 + 4 + 5) / 2.5
	if !almostEqual(got[0], want0, 1e-12) || !almostEqual(got[1], want1, 1e-12) {
		t.Errorf("PAA fractional = %v, want [%v %v]", got, want0, want1)
	}
}

func TestPAAErrors(t *testing.T) {
	if _, err := PAA(nil, 1); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("empty: %v", err)
	}
	if _, err := PAA([]float64{1, 2}, 0); !errors.Is(err, ErrBadSegments) {
		t.Errorf("w=0: %v", err)
	}
	if _, err := PAA([]float64{1, 2}, 3); !errors.Is(err, ErrBadSegments) {
		t.Errorf("w>n: %v", err)
	}
}

// Property: PAA preserves the overall mean for any series and any segment
// count (each sample contributes equally through the fractional frames).
func TestQuickPAAMeanPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(64)
		w := 1 + rng.Intn(n)
		series := make([]float64, n)
		for i := range series {
			series[i] = rng.NormFloat64() * 5
		}
		paa, err := PAA(series, w)
		if err != nil {
			t.Fatal(err)
		}
		if len(paa) != w {
			t.Fatalf("trial %d: len = %d, want %d", trial, len(paa), w)
		}
		if !almostEqual(Mean(paa), Mean(series), 1e-9) {
			t.Fatalf("trial %d (n=%d w=%d): PAA mean %v != series mean %v",
				trial, n, w, Mean(paa), Mean(series))
		}
	}
}

// Property: PAA of a constant series is constant.
func TestQuickPAAConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		w := 1 + rng.Intn(n)
		c := rng.NormFloat64()
		series := make([]float64, n)
		for i := range series {
			series[i] = c
		}
		paa, err := PAA(series, w)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range paa {
			if !almostEqual(x, c, 1e-9) {
				t.Fatalf("trial %d: paa[%d] = %v, want %v", trial, i, x, c)
			}
		}
	}
}

// Property: PAA values are bounded by the series min and max.
func TestQuickPAABounds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		w := 1 + rng.Intn(n)
		series := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range series {
			series[i] = rng.NormFloat64()
			lo = math.Min(lo, series[i])
			hi = math.Max(hi, series[i])
		}
		paa, _ := PAA(series, w)
		for i, x := range paa {
			if x < lo-1e-9 || x > hi+1e-9 {
				t.Fatalf("trial %d: paa[%d]=%v outside [%v, %v]", trial, i, x, lo, hi)
			}
		}
	}
}

func TestPAAReduce(t *testing.T) {
	series := []float64{1, 2, 3, 4, 5, 6, 7}
	got, err := PAAReduce(series, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 5, 7} // (1+2+3)/3, (4+5+6)/3, 7/1
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("PAAReduce[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPAAReduceFactorOne(t *testing.T) {
	series := []float64{1, 2, 3}
	got, err := PAAReduce(series, 1)
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 42
	if series[0] == 42 {
		t.Error("factor-1 reduce aliases input")
	}
}

func TestPAAReduceErrors(t *testing.T) {
	if _, err := PAAReduce(nil, 2); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("empty: %v", err)
	}
	if _, err := PAAReduce([]float64{1}, 0); !errors.Is(err, ErrBadSegments) {
		t.Errorf("factor 0: %v", err)
	}
}

// Paper geometry: 1050 spectral features reduce to 105 with factor 10.
func TestPAAReducePaperGeometry(t *testing.T) {
	series := make([]float64, 1050)
	for i := range series {
		series[i] = float64(i)
	}
	got, err := PAAReduce(series, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 105 {
		t.Errorf("reduced length = %d, want 105", len(got))
	}
	if !almostEqual(got[0], 4.5, 1e-12) {
		t.Errorf("first reduced value = %v, want 4.5", got[0])
	}
}
