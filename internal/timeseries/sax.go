package timeseries

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// MaxAlphabet is the largest supported SAX alphabet size. Breakpoints are
// derived from the standard normal quantiles, which remain well separated
// up to this size for practical purposes.
const MaxAlphabet = 64

// MinAlphabet is the smallest meaningful SAX alphabet size.
const MinAlphabet = 2

// Breakpoints returns the a-1 breakpoints that divide the standard normal
// distribution into a equiprobable regions. Symbol i (0-based) covers the
// interval (bp[i-1], bp[i]] with bp[-1] = -inf and bp[a-1] = +inf.
//
// SAX assumes Z-normalized subsequences are approximately Gaussian, so
// equiprobable normal regions give symbols that occur with equal
// probability (Lin et al. 2003).
func Breakpoints(alphabet int) ([]float64, error) {
	if alphabet < MinAlphabet || alphabet > MaxAlphabet {
		return nil, fmt.Errorf("%w: %d not in [%d, %d]", ErrBadAlphabet, alphabet, MinAlphabet, MaxAlphabet)
	}
	bp := make([]float64, alphabet-1)
	for i := 1; i < alphabet; i++ {
		bp[i-1] = normQuantile(float64(i) / float64(alphabet))
	}
	return bp, nil
}

// normQuantile returns the quantile function (inverse CDF) of the standard
// normal distribution, computed with the Acklam rational approximation
// (relative error < 1.15e-9 across the open unit interval).
func normQuantile(p float64) float64 {
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}
	// Coefficients for the central and tail rational approximations.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	return x
}

// SAX maps a time series to a symbolic word. The series is Z-normalized,
// reduced to w PAA segments, and each segment mean is mapped to the symbol
// (0-based integer) of the equiprobable normal region it falls in.
type SAX struct {
	alphabet    int
	breakpoints []float64
}

// NewSAX returns a SAX converter for the given alphabet size.
func NewSAX(alphabet int) (*SAX, error) {
	bp, err := Breakpoints(alphabet)
	if err != nil {
		return nil, err
	}
	return &SAX{alphabet: alphabet, breakpoints: bp}, nil
}

// Alphabet returns the alphabet size.
func (s *SAX) Alphabet() int { return s.alphabet }

// Symbol maps one (already normalized) value to its symbol in [0, a).
func (s *SAX) Symbol(x float64) int {
	// sort.SearchFloat64s returns the first breakpoint >= x; symbols cover
	// (bp[i-1], bp[i]], so search for the first breakpoint >= x.
	i := sort.SearchFloat64s(s.breakpoints, x)
	// NaN sorts nowhere useful; clamp it to the middle symbol so corrupt
	// samples do not bias the extremes.
	if math.IsNaN(x) {
		return s.alphabet / 2
	}
	return i
}

// Word converts series to a SAX word of length w, Z-normalizing first.
func (s *SAX) Word(series []float64, w int) ([]int, error) {
	if len(series) == 0 {
		return nil, ErrEmptyInput
	}
	norm := ZNormalize(series)
	paa, err := PAA(norm, w)
	if err != nil {
		return nil, err
	}
	word := make([]int, len(paa))
	for i, x := range paa {
		word[i] = s.Symbol(x)
	}
	return word, nil
}

// WordOfNormalized converts an already Z-normalized (or otherwise prepared)
// series to symbols without renormalizing or PAA reduction: one symbol per
// sample. The streaming saxanomaly operator uses this form, normalizing
// over its own window.
func (s *SAX) WordOfNormalized(series []float64) []int {
	word := make([]int, len(series))
	for i, x := range series {
		word[i] = s.Symbol(x)
	}
	return word
}

// WordString renders a SAX word using letters starting at 'a' (for
// alphabets up to 26) or as space-separated integers otherwise, matching
// common SAX presentation.
func WordString(word []int, alphabet int) string {
	if alphabet <= 26 {
		var sb strings.Builder
		for _, w := range word {
			if w < 0 {
				w = 0
			}
			if w >= alphabet {
				w = alphabet - 1
			}
			sb.WriteByte(byte('a' + w))
		}
		return sb.String()
	}
	parts := make([]string, len(word))
	for i, w := range word {
		parts[i] = fmt.Sprintf("%d", w)
	}
	return strings.Join(parts, " ")
}

// MinDist returns the lower-bounding distance between two SAX words of
// equal length produced from series of original length n (Lin et al.). It
// is zero for adjacent symbols and uses breakpoint gaps otherwise.
func (s *SAX) MinDist(a, b []int, n int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("timeseries: MinDist: word lengths %d != %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, ErrEmptyInput
	}
	var sum float64
	for i := range a {
		d := s.symbolDist(a[i], b[i])
		sum += d * d
	}
	scale := math.Sqrt(float64(n) / float64(len(a)))
	return scale * math.Sqrt(sum), nil
}

// symbolDist is the dist() lookup from the SAX paper: zero for symbols at
// distance <= 1, otherwise the gap between the breakpoints bounding them.
func (s *SAX) symbolDist(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	if j-i <= 1 {
		return 0
	}
	return s.breakpoints[j-1] - s.breakpoints[i]
}
