// Package timeseries implements the time-series representations used by
// the ensemble-extraction pipeline: Z-normalization, piecewise aggregate
// approximation (PAA), symbolic aggregate approximation (SAX), SAX bitmaps
// and the bitmap-distance anomaly score, plus supporting moving-window and
// incremental statistics.
//
// The representations follow Keogh et al. (PAA), Lin et al. (SAX) and
// Kumar et al. (time-series bitmaps) as used in Kasten, McKinley & Gage,
// "Automated Ensemble Extraction and Analysis of Acoustic Data Streams"
// (DEPSA/ICDCS 2007).
package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// Errors shared across the package.
var (
	ErrEmptyInput  = errors.New("timeseries: empty input")
	ErrBadSegments = errors.New("timeseries: segment count must be in [1, len(series)]")
	ErrBadAlphabet = errors.New("timeseries: alphabet size out of range")
	ErrBadWindow   = errors.New("timeseries: window size must be positive")
)

// Mean returns the arithmetic mean of v. It returns 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v (dividing by n, matching
// the Z-normalization convention in the SAX literature). It returns 0 for
// slices shorter than 1.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	mu := Mean(v)
	var s float64
	for _, x := range v {
		d := x - mu
		s += d * d
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 { return math.Sqrt(Variance(v)) }

// ZNormalize returns a Z-normalized copy of v: the mean is subtracted and
// each element divided by the standard deviation, so the result has mean 0
// and unit variance. Series with near-zero variance (below eps) are
// returned as all zeros rather than amplifying noise — the convention used
// for flat subsequences in the SAX literature.
func ZNormalize(v []float64) []float64 {
	out := make([]float64, len(v))
	ZNormalizeInto(out, v)
	return out
}

// zNormEps is the variance floor below which a window is considered flat.
const zNormEps = 1e-12

// ZNormalizeInto Z-normalizes src into dst, which must have the same
// length. dst and src may alias.
func ZNormalizeInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic("timeseries: ZNormalizeInto: length mismatch")
	}
	if len(src) == 0 {
		return
	}
	mu := Mean(src)
	sigma := StdDev(src)
	if sigma < zNormEps {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	inv := 1 / sigma
	for i, x := range src {
		dst[i] = (x - mu) * inv
	}
}

// Welford maintains running mean and variance using Welford's online
// algorithm. The zero value is ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the running mean (0 if no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the running sample variance (n-1 denominator).
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// MovingAverage computes a streaming mean over a fixed-size window. The
// zero value is unusable; construct with NewMovingAverage.
type MovingAverage struct {
	buf  []float64
	head int
	full bool
	sum  float64
}

// NewMovingAverage returns a moving average with the given window size.
func NewMovingAverage(window int) (*MovingAverage, error) {
	if window <= 0 {
		return nil, ErrBadWindow
	}
	return &MovingAverage{buf: make([]float64, window)}, nil
}

// Push adds one value and returns the mean over the last min(window, count)
// values.
func (m *MovingAverage) Push(x float64) float64 {
	if m.full {
		m.sum -= m.buf[m.head]
	}
	m.buf[m.head] = x
	m.sum += x
	m.head++
	if m.head == len(m.buf) {
		m.head = 0
		m.full = true
	}
	return m.Mean()
}

// Mean returns the current windowed mean without adding a value.
func (m *MovingAverage) Mean() float64 {
	n := m.Count()
	if n == 0 {
		return 0
	}
	return m.sum / float64(n)
}

// Count returns the number of values currently in the window.
func (m *MovingAverage) Count() int {
	if m.full {
		return len(m.buf)
	}
	return m.head
}

// Window returns the configured window size.
func (m *MovingAverage) Window() int { return len(m.buf) }

// Reset empties the window.
func (m *MovingAverage) Reset() {
	m.head = 0
	m.full = false
	m.sum = 0
	for i := range m.buf {
		m.buf[i] = 0
	}
}

// EWStats maintains an exponentially weighted mean and variance: newer
// observations dominate with time constant 1/alpha observations. Unlike
// Welford it forgets, so a baseline estimate polluted by early outliers
// recovers. The zero value is unusable; construct with NewEWStats.
type EWStats struct {
	alpha float64
	n     uint64
	mean  float64
	vari  float64
}

// NewEWStats returns an accumulator with the given smoothing factor in
// (0, 1]; smaller alpha means a longer memory.
func NewEWStats(alpha float64) (*EWStats, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("timeseries: EW alpha %v not in (0, 1]", alpha)
	}
	return &EWStats{alpha: alpha}, nil
}

// Add folds in one observation. The first observation initializes the
// mean directly so early estimates are not biased toward zero.
func (e *EWStats) Add(x float64) {
	e.n++
	if e.n == 1 {
		e.mean = x
		return
	}
	d := x - e.mean
	e.mean += e.alpha * d
	e.vari = (1 - e.alpha) * (e.vari + e.alpha*d*d)
}

// Count returns the number of observations.
func (e *EWStats) Count() uint64 { return e.n }

// Mean returns the weighted mean.
func (e *EWStats) Mean() float64 { return e.mean }

// Variance returns the weighted variance.
func (e *EWStats) Variance() float64 { return e.vari }

// StdDev returns the weighted standard deviation.
func (e *EWStats) StdDev() float64 { return math.Sqrt(e.vari) }

// Reset clears the accumulator, keeping alpha.
func (e *EWStats) Reset() {
	e.n = 0
	e.mean = 0
	e.vari = 0
}
