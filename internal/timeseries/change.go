package timeseries

import "math"

// Streaming change-point detectors.
//
// StreamingZScore flags individual outliers against an EWMA baseline;
// the detectors here flag *sustained* shifts. CUSUM accumulates
// standardized deviations beyond a slack band, so a persistent small
// drift crosses the decision threshold even though no single sample
// would. Page-Hinkley tracks the gap between the cumulative deviation
// and its running minimum, the classic sequential test for an upward
// mean shift. Both score before folding the sample into their
// baseline — like StreamingZScore — so the shift itself cannot drag
// the baseline along and mask the change.

// CUSUM is a two-sided cumulative-sum change detector over an
// exponentially weighted baseline. Each sample is standardized against
// the running mean and deviation; the positive and negative sums
// accumulate standardized residuals beyond the slack K and an alarm
// fires when either exceeds the decision threshold H. After an alarm
// the sums reset (the baseline is kept), so one shift yields one alarm
// rather than an alarm per sample.
//
// The zero value is unusable; construct with NewCUSUM.
type CUSUM struct {
	ew     *EWStats
	warmup uint64
	seen   uint64
	pos    float64
	neg    float64

	// K is the slack, in standard deviations, subtracted from each
	// standardized residual before it accumulates: deviations inside
	// +/-K sigma are treated as noise. Default 0.5.
	K float64
	// H is the decision threshold, in accumulated standard deviations.
	// Default 5.
	H float64
	// MinSigma is an absolute floor on the deviation used for
	// standardization, so a flat baseline (sigma ~ 0) does not turn
	// measurement jitter into an alarm. Zero means no floor beyond the
	// relative one.
	MinSigma float64
}

// NewCUSUM returns a two-sided CUSUM detector whose baseline is an
// exponentially weighted mean/variance with the given smoothing factor.
// No alarm fires during the first warmup samples.
func NewCUSUM(alpha float64, warmup int) (*CUSUM, error) {
	ew, err := NewEWStats(alpha)
	if err != nil {
		return nil, err
	}
	if warmup < 0 {
		warmup = 0
	}
	return &CUSUM{ew: ew, warmup: uint64(warmup), K: 0.5, H: 5}, nil
}

// sigmaFloor returns the standardization deviation with the relative
// and absolute floors applied (shared by CUSUM and PageHinkley).
func sigmaFloor(sigma, mean, minSigma float64) float64 {
	if floor := 1e-6 + 0.05*math.Abs(mean); sigma < floor {
		sigma = floor
	}
	if sigma < minSigma {
		sigma = minSigma
	}
	return sigma
}

// Push scores one sample and then folds it into the baseline. It
// returns the dominant cumulative sum (positive when the stream runs
// above baseline, negative below) and whether the detector is warm and
// the decision threshold was crossed. On an alarm the sums reset.
func (c *CUSUM) Push(x float64) (stat float64, alarm bool) {
	warm := c.seen >= c.warmup
	if c.seen > 0 && warm {
		sigma := sigmaFloor(c.ew.StdDev(), c.ew.Mean(), c.MinSigma)
		z := (x - c.ew.Mean()) / sigma
		c.pos = math.Max(0, c.pos+z-c.K)
		c.neg = math.Max(0, c.neg-z-c.K)
		if c.pos >= c.H || c.neg >= c.H {
			alarm = true
		}
	}
	stat = c.pos
	if c.neg > c.pos {
		stat = -c.neg
	}
	c.seen++
	c.ew.Add(x)
	if alarm {
		c.pos, c.neg = 0, 0
	}
	return stat, alarm
}

// Seen returns the number of samples pushed.
func (c *CUSUM) Seen() uint64 { return c.seen }

// Reset clears the baseline and both sums, keeping the configuration.
func (c *CUSUM) Reset() {
	c.ew.Reset()
	c.seen = 0
	c.pos, c.neg = 0, 0
}

// PageHinkley is the Page-Hinkley sequential test for an upward mean
// shift: it accumulates the deviation of each sample from the running
// mean (minus a drift allowance Delta) and alarms when the accumulation
// rises more than Lambda above its historical minimum. Samples are
// standardized first, so Delta and Lambda are in sigma units and one
// configuration serves metrics of any scale.
//
// The zero value is unusable; construct with NewPageHinkley.
type PageHinkley struct {
	ew     *EWStats
	warmup uint64
	seen   uint64
	cum    float64 // m_T: cumulative standardized deviation minus drift
	min    float64 // M_T: historical minimum of cum

	// Delta is the drift allowance per sample, in standard deviations;
	// deviations below it never accumulate. Default 0.25.
	Delta float64
	// Lambda is the alarm threshold on cum - min, in accumulated
	// standard deviations. Default 8.
	Lambda float64
	// MinSigma is an absolute floor on the standardization deviation,
	// as in CUSUM.
	MinSigma float64
}

// NewPageHinkley returns a Page-Hinkley detector over an exponentially
// weighted baseline with the given smoothing factor. No alarm fires
// during the first warmup samples.
func NewPageHinkley(alpha float64, warmup int) (*PageHinkley, error) {
	ew, err := NewEWStats(alpha)
	if err != nil {
		return nil, err
	}
	if warmup < 0 {
		warmup = 0
	}
	return &PageHinkley{ew: ew, warmup: uint64(warmup), Delta: 0.25, Lambda: 8}, nil
}

// Push scores one sample and then folds it into the baseline. It
// returns the current test statistic (cum - min, >= 0) and whether the
// detector is warm and the statistic crossed Lambda. On an alarm the
// accumulator resets (the baseline is kept).
func (p *PageHinkley) Push(x float64) (stat float64, alarm bool) {
	warm := p.seen >= p.warmup
	if p.seen > 0 && warm {
		sigma := sigmaFloor(p.ew.StdDev(), p.ew.Mean(), p.MinSigma)
		z := (x - p.ew.Mean()) / sigma
		p.cum += z - p.Delta
		if p.cum < p.min {
			p.min = p.cum
		}
		stat = p.cum - p.min
		if stat >= p.Lambda {
			alarm = true
		}
	}
	p.seen++
	p.ew.Add(x)
	if alarm {
		p.cum, p.min = 0, 0
	}
	return stat, alarm
}

// Seen returns the number of samples pushed.
func (p *PageHinkley) Seen() uint64 { return p.seen }

// Reset clears the baseline and the accumulator, keeping the
// configuration.
func (p *PageHinkley) Reset() {
	p.ew.Reset()
	p.seen = 0
	p.cum, p.min = 0, 0
}
