package timeseries

import (
	"math"
	"math/rand"
	"testing"
)

func TestBitmapBasicCounts(t *testing.T) {
	b, err := NewBitmap(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Alphabet() != 3 || b.Gram() != 2 || b.Cells() != 9 {
		t.Fatalf("shape: a=%d g=%d cells=%d", b.Alphabet(), b.Gram(), b.Cells())
	}
	b.AddWord([]int{0, 1, 2, 1}) // grams: 01, 12, 21
	if b.Total() != 3 {
		t.Errorf("Total = %d, want 3", b.Total())
	}
	if f := b.Frequency([]int{0, 1}); !almostEqual(f, 1.0/3, 1e-12) {
		t.Errorf("freq(01) = %v", f)
	}
	if f := b.Frequency([]int{2, 2}); f != 0 {
		t.Errorf("freq(22) = %v, want 0", f)
	}
}

func TestBitmapIncDec(t *testing.T) {
	b, _ := NewBitmap(4, 1)
	b.Inc([]int{2})
	b.Inc([]int{2})
	b.Dec([]int{2})
	if b.Total() != 1 {
		t.Errorf("Total = %d", b.Total())
	}
	if f := b.Frequency([]int{2}); f != 1 {
		t.Errorf("freq = %v", f)
	}
}

func TestBitmapDecUnderflowPanics(t *testing.T) {
	b, _ := NewBitmap(4, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on cell underflow")
		}
	}()
	b.Dec([]int{0})
}

func TestBitmapGramLengthPanics(t *testing.T) {
	b, _ := NewBitmap(4, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on gram length mismatch")
		}
	}()
	b.Inc([]int{1})
}

func TestBitmapClamping(t *testing.T) {
	b, _ := NewBitmap(4, 1)
	b.Inc([]int{-5})
	b.Inc([]int{99})
	if f := b.Frequency([]int{0}); !almostEqual(f, 0.5, 1e-12) {
		t.Errorf("clamped low freq = %v", f)
	}
	if f := b.Frequency([]int{3}); !almostEqual(f, 0.5, 1e-12) {
		t.Errorf("clamped high freq = %v", f)
	}
}

func TestBitmapShapeErrors(t *testing.T) {
	if _, err := NewBitmap(1, 1); err == nil {
		t.Error("alphabet 1 should be rejected")
	}
	if _, err := NewBitmap(4, 0); err == nil {
		t.Error("gram 0 should be rejected")
	}
	if _, err := NewBitmap(4, 5); err == nil {
		t.Error("gram 5 should be rejected")
	}
}

func TestBitmapFrequenciesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b, _ := NewBitmap(5, 2)
	word := make([]int, 500)
	for i := range word {
		word[i] = rng.Intn(5)
	}
	b.AddWord(word)
	var sum float64
	for _, f := range b.Frequencies() {
		if f < 0 {
			t.Fatal("negative frequency")
		}
		sum += f
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("frequencies sum to %v", sum)
	}
}

func TestBitmapEmptyFrequencies(t *testing.T) {
	b, _ := NewBitmap(4, 2)
	for _, f := range b.Frequencies() {
		if f != 0 {
			t.Fatal("empty bitmap should have zero frequencies")
		}
	}
	if b.Frequency([]int{1, 1}) != 0 {
		t.Error("empty bitmap frequency should be 0")
	}
}

func TestBitmapResetAndClone(t *testing.T) {
	b, _ := NewBitmap(3, 1)
	b.AddWord([]int{0, 1, 2})
	c := b.Clone()
	b.Reset()
	if b.Total() != 0 {
		t.Error("Reset did not clear")
	}
	if c.Total() != 3 {
		t.Error("Clone affected by Reset")
	}
	c.Inc([]int{0})
	if b.Total() != 0 {
		t.Error("Clone shares counts with original")
	}
}

func TestBitmapDistanceIdentical(t *testing.T) {
	a, _ := NewBitmap(4, 2)
	b, _ := NewBitmap(4, 2)
	word := []int{0, 1, 2, 3, 2, 1, 0}
	a.AddWord(word)
	b.AddWord(word)
	d, err := BitmapDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("identical bitmaps distance = %v", d)
	}
}

func TestBitmapDistanceDisjoint(t *testing.T) {
	a, _ := NewBitmap(2, 1)
	b, _ := NewBitmap(2, 1)
	a.AddWord([]int{0, 0, 0})
	b.AddWord([]int{1, 1, 1})
	d, _ := BitmapDistance(a, b)
	// Frequency vectors (1,0) vs (0,1): distance sqrt(2).
	if !almostEqual(d, math.Sqrt2, 1e-12) {
		t.Errorf("disjoint distance = %v, want sqrt(2)", d)
	}
}

func TestBitmapDistanceShapeMismatch(t *testing.T) {
	a, _ := NewBitmap(4, 2)
	b, _ := NewBitmap(4, 1)
	if _, err := BitmapDistance(a, b); err == nil {
		t.Error("shape mismatch should error")
	}
	c, _ := NewBitmap(5, 2)
	if _, err := BitmapDistance(a, c); err == nil {
		t.Error("alphabet mismatch should error")
	}
}

func TestBitmapDistanceEmptyOperands(t *testing.T) {
	a, _ := NewBitmap(3, 1)
	b, _ := NewBitmap(3, 1)
	if d, err := BitmapDistance(a, b); err != nil || d != 0 {
		t.Errorf("two empty bitmaps: d=%v err=%v", d, err)
	}
	b.AddWord([]int{0, 1})
	if d, _ := BitmapDistance(a, b); d <= 0 {
		t.Errorf("empty vs non-empty should be positive, got %v", d)
	}
}

// Property: bitmap distance is a metric-like measure — symmetric,
// non-negative, zero on identity, and bounded by sqrt(2) for frequency
// vectors.
func TestQuickBitmapDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		a, _ := NewBitmap(4, 2)
		b, _ := NewBitmap(4, 2)
		wa := make([]int, 2+rng.Intn(100))
		wb := make([]int, 2+rng.Intn(100))
		for i := range wa {
			wa[i] = rng.Intn(4)
		}
		for i := range wb {
			wb[i] = rng.Intn(4)
		}
		a.AddWord(wa)
		b.AddWord(wb)
		dab, err := BitmapDistance(a, b)
		if err != nil {
			t.Fatal(err)
		}
		dba, _ := BitmapDistance(b, a)
		if !almostEqual(dab, dba, 1e-12) {
			t.Fatalf("not symmetric: %v vs %v", dab, dba)
		}
		if dab < 0 || dab > math.Sqrt2+1e-9 {
			t.Fatalf("distance out of range: %v", dab)
		}
	}
}
