package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"symmetric", []float64{-1, 1}, 0},
		{"typical", []float64{1, 2, 3, 4}, 2.5},
	}
	for _, tt := range tests {
		if got := Mean(tt.in); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("%s: Mean = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(v); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(v); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance(nil) != 0 {
		t.Error("Variance(nil) should be 0")
	}
}

func TestZNormalizeBasic(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	z := ZNormalize(v)
	if !almostEqual(Mean(z), 0, 1e-12) {
		t.Errorf("normalized mean = %v", Mean(z))
	}
	if !almostEqual(StdDev(z), 1, 1e-12) {
		t.Errorf("normalized stddev = %v", StdDev(z))
	}
	// Original must be untouched.
	if v[0] != 1 {
		t.Error("ZNormalize mutated its input")
	}
}

func TestZNormalizeFlat(t *testing.T) {
	z := ZNormalize([]float64{3, 3, 3, 3})
	for _, x := range z {
		if x != 0 {
			t.Errorf("flat series should normalize to zeros, got %v", z)
			break
		}
	}
}

func TestZNormalizeEmpty(t *testing.T) {
	if z := ZNormalize(nil); len(z) != 0 {
		t.Errorf("ZNormalize(nil) = %v", z)
	}
}

func TestZNormalizeIntoAlias(t *testing.T) {
	v := []float64{10, 20, 30}
	ZNormalizeInto(v, v)
	if !almostEqual(Mean(v), 0, 1e-12) {
		t.Errorf("in-place normalize mean = %v", Mean(v))
	}
}

func TestZNormalizeIntoLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	ZNormalizeInto(make([]float64, 2), make([]float64, 3))
}

// Property: Z-normalization is invariant to affine transforms of the input
// (up to sign of the scale).
func TestQuickZNormalizeAffineInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(50)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 10
		}
		if StdDev(v) < 1e-9 {
			continue
		}
		scale := 0.5 + rng.Float64()*10
		shift := rng.Float64()*100 - 50
		w := make([]float64, n)
		for i := range w {
			w[i] = v[i]*scale + shift
		}
		zv, zw := ZNormalize(v), ZNormalize(w)
		for i := range zv {
			if !almostEqual(zv[i], zw[i], 1e-6) {
				t.Fatalf("trial %d: affine invariance violated at %d: %v vs %v", trial, i, zv[i], zw[i])
			}
		}
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := make([]float64, 1000)
	var w Welford
	for i := range v {
		v[i] = rng.NormFloat64()*7 + 3
		w.Add(v[i])
	}
	if w.Count() != 1000 {
		t.Errorf("Count = %d", w.Count())
	}
	if !almostEqual(w.Mean(), Mean(v), 1e-9) {
		t.Errorf("Welford mean %v != batch %v", w.Mean(), Mean(v))
	}
	if !almostEqual(w.Variance(), Variance(v), 1e-9) {
		t.Errorf("Welford variance %v != batch %v", w.Variance(), Variance(v))
	}
	if !almostEqual(w.StdDev(), StdDev(v), 1e-9) {
		t.Errorf("Welford stddev %v != batch %v", w.StdDev(), StdDev(v))
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.SampleVariance() != 0 {
		t.Error("empty Welford should report zeros")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 || w.SampleVariance() != 0 {
		t.Error("single observation: mean 5, variances 0")
	}
	w.Add(7)
	if !almostEqual(w.SampleVariance(), 2, 1e-12) {
		t.Errorf("SampleVariance = %v, want 2", w.SampleVariance())
	}
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestMovingAverageBasics(t *testing.T) {
	m, err := NewMovingAverage(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Window() != 3 {
		t.Errorf("Window = %d", m.Window())
	}
	steps := []struct {
		push float64
		want float64
		n    int
	}{
		{3, 3, 1},
		{6, 4.5, 2},
		{9, 6, 3},
		{12, 9, 3}, // 6,9,12
		{0, 7, 3},  // 9,12,0
		{0, 4, 3},  // 12,0,0
		{0, 0, 3},  // 0,0,0
	}
	for i, s := range steps {
		got := m.Push(s.push)
		if !almostEqual(got, s.want, 1e-12) {
			t.Errorf("step %d: Push(%v) = %v, want %v", i, s.push, got, s.want)
		}
		if m.Count() != s.n {
			t.Errorf("step %d: Count = %d, want %d", i, m.Count(), s.n)
		}
	}
	m.Reset()
	if m.Count() != 0 || m.Mean() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestMovingAverageBadWindow(t *testing.T) {
	for _, w := range []int{0, -1} {
		if _, err := NewMovingAverage(w); err == nil {
			t.Errorf("window %d should be rejected", w)
		}
	}
}

// Property: the moving average always equals the mean of the last
// min(window, count) pushed values.
func TestQuickMovingAverage(t *testing.T) {
	f := func(raw []int16, wsel uint8) bool {
		window := 1 + int(wsel)%20
		m, err := NewMovingAverage(window)
		if err != nil {
			return false
		}
		hist := make([]float64, 0, len(raw))
		for _, r := range raw {
			x := float64(r) / 100
			hist = append(hist, x)
			got := m.Push(x)
			lo := len(hist) - window
			if lo < 0 {
				lo = 0
			}
			if !almostEqual(got, Mean(hist[lo:]), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
