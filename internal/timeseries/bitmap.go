package timeseries

import (
	"fmt"
	"math"
)

// Bitmap is a SAX time-series bitmap (Kumar et al. 2005): an
// n-dimensional matrix of counts of symbolic subsequences ("grams") of
// length n over an alphabet of size a, flattened to a slice of a^n cells.
// Frequencies are counts divided by the total number of grams, and two
// bitmaps are compared by Euclidean distance between their frequency
// matrices.
type Bitmap struct {
	alphabet int
	gram     int
	counts   []int
	total    int
}

// NewBitmap returns an empty bitmap for subsequences of length gram over
// the given alphabet. gram must be in [1, 4]: a^4 cells is the largest
// matrix that stays cache-friendly for streaming use.
func NewBitmap(alphabet, gram int) (*Bitmap, error) {
	if alphabet < MinAlphabet || alphabet > MaxAlphabet {
		return nil, fmt.Errorf("%w: %d", ErrBadAlphabet, alphabet)
	}
	if gram < 1 || gram > 4 {
		return nil, fmt.Errorf("timeseries: gram length %d not in [1, 4]", gram)
	}
	cells := 1
	for i := 0; i < gram; i++ {
		cells *= alphabet
	}
	return &Bitmap{alphabet: alphabet, gram: gram, counts: make([]int, cells)}, nil
}

// Alphabet returns the alphabet size.
func (b *Bitmap) Alphabet() int { return b.alphabet }

// Gram returns the subsequence length.
func (b *Bitmap) Gram() int { return b.gram }

// Cells returns the number of matrix cells (alphabet^gram).
func (b *Bitmap) Cells() int { return len(b.counts) }

// Total returns the number of grams currently counted.
func (b *Bitmap) Total() int { return b.total }

// index flattens a gram to its cell index. Symbols outside [0, a) are
// clamped.
func (b *Bitmap) index(gram []int) int {
	idx := 0
	for _, s := range gram {
		if s < 0 {
			s = 0
		} else if s >= b.alphabet {
			s = b.alphabet - 1
		}
		idx = idx*b.alphabet + s
	}
	return idx
}

// Inc counts one occurrence of gram. len(gram) must equal Gram().
func (b *Bitmap) Inc(gram []int) {
	if len(gram) != b.gram {
		panic(fmt.Sprintf("timeseries: Bitmap.Inc: gram length %d, want %d", len(gram), b.gram))
	}
	b.counts[b.index(gram)]++
	b.total++
}

// Dec removes one occurrence of gram. Decrementing an empty cell panics:
// it always indicates a bookkeeping bug in the caller's sliding window.
func (b *Bitmap) Dec(gram []int) {
	if len(gram) != b.gram {
		panic(fmt.Sprintf("timeseries: Bitmap.Dec: gram length %d, want %d", len(gram), b.gram))
	}
	i := b.index(gram)
	if b.counts[i] == 0 || b.total == 0 {
		panic("timeseries: Bitmap.Dec: cell underflow")
	}
	b.counts[i]--
	b.total--
}

// AddWord counts every gram of the symbolic word.
func (b *Bitmap) AddWord(word []int) {
	for i := 0; i+b.gram <= len(word); i++ {
		b.Inc(word[i : i+b.gram])
	}
}

// Frequency returns the relative frequency of the cell for gram.
func (b *Bitmap) Frequency(gram []int) float64 {
	if b.total == 0 {
		return 0
	}
	return float64(b.counts[b.index(gram)]) / float64(b.total)
}

// Frequencies returns the full frequency matrix, flattened row-major.
func (b *Bitmap) Frequencies() []float64 {
	out := make([]float64, len(b.counts))
	if b.total == 0 {
		return out
	}
	inv := 1 / float64(b.total)
	for i, c := range b.counts {
		out[i] = float64(c) * inv
	}
	return out
}

// Reset clears all counts.
func (b *Bitmap) Reset() {
	for i := range b.counts {
		b.counts[i] = 0
	}
	b.total = 0
}

// Clone returns a deep copy of the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{alphabet: b.alphabet, gram: b.gram, total: b.total}
	c.counts = make([]int, len(b.counts))
	copy(c.counts, b.counts)
	return c
}

// BitmapDistance returns the Euclidean distance between the frequency
// matrices of two bitmaps, the anomaly measure from Kumar et al. used by
// the saxanomaly operator. The bitmaps must have identical shape.
func BitmapDistance(x, y *Bitmap) (float64, error) {
	if x.alphabet != y.alphabet || x.gram != y.gram {
		return 0, fmt.Errorf("timeseries: bitmap shape mismatch: (%d,%d) vs (%d,%d)",
			x.alphabet, x.gram, y.alphabet, y.gram)
	}
	var sum float64
	invX, invY := 0.0, 0.0
	if x.total > 0 {
		invX = 1 / float64(x.total)
	}
	if y.total > 0 {
		invY = 1 / float64(y.total)
	}
	for i := range x.counts {
		d := float64(x.counts[i])*invX - float64(y.counts[i])*invY
		sum += d * d
	}
	return math.Sqrt(sum), nil
}
