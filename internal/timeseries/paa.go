package timeseries

import "math"

// PAA reduces series to w segments using piecewise aggregate approximation:
// the series is divided into w equal-sized frames and each frame is
// replaced by its mean. When len(series) is not divisible by w, frame
// boundaries fall between samples and boundary samples contribute
// fractionally to both frames (the standard generalization from Keogh et
// al.), so PAA is well defined for any 1 <= w <= n.
func PAA(series []float64, w int) ([]float64, error) {
	n := len(series)
	if n == 0 {
		return nil, ErrEmptyInput
	}
	if w < 1 || w > n {
		return nil, ErrBadSegments
	}
	out := make([]float64, w)
	if n == w {
		copy(out, series)
		return out, nil
	}
	if n%w == 0 {
		f := n / w
		for i := 0; i < w; i++ {
			var s float64
			for _, x := range series[i*f : (i+1)*f] {
				s += x
			}
			out[i] = s / float64(f)
		}
		return out, nil
	}
	// Fractional frames: work at a virtual resolution of n*w "slots",
	// where sample i covers slots [i*w, (i+1)*w) and frame j covers
	// [j*n, (j+1)*n).
	frameLen := float64(n) / float64(w)
	for j := 0; j < w; j++ {
		lo := float64(j) * frameLen
		hi := float64(j+1) * frameLen
		var s float64
		for i := int(lo); i < n && float64(i) < hi; i++ {
			l := math.Max(lo, float64(i))
			h := math.Min(hi, float64(i+1))
			if h > l {
				s += series[i] * (h - l)
			}
		}
		out[j] = s / frameLen
	}
	return out, nil
}

// PAAReduce reduces series by an integer factor: every run of factor
// consecutive samples is replaced by its mean. A trailing partial run is
// averaged over its actual length. This is the operation the pipeline's
// paa operator applies to spectral records (the paper reduces 1050-feature
// patterns to 105 with factor 10).
func PAAReduce(series []float64, factor int) ([]float64, error) {
	return PAAReduceInto(nil, series, factor)
}

// PAAReduceInto appends the reduction of series to dst (which may be nil)
// and returns the extended slice. Reusing dst (e.g. buf[:0]) makes the
// reduction allocation-free, which is what the pipeline's paa operator
// does per record.
func PAAReduceInto(dst, series []float64, factor int) ([]float64, error) {
	if len(series) == 0 {
		return nil, ErrEmptyInput
	}
	if factor <= 0 {
		return nil, ErrBadSegments
	}
	if factor == 1 {
		return append(dst, series...), nil
	}
	w := (len(series) + factor - 1) / factor
	for j := 0; j < w; j++ {
		lo := j * factor
		hi := lo + factor
		if hi > len(series) {
			hi = len(series)
		}
		var s float64
		for _, x := range series[lo:hi] {
			s += x
		}
		dst = append(dst, s/float64(hi-lo))
	}
	return dst, nil
}
