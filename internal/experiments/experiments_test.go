package experiments

import (
	"strings"
	"testing"
)

// tinyCfg keeps experiment tests fast.
func tinyCfg() Config {
	return Config{Scale: 0.03, LOOReps: 1, ResubReps: 1, MaxFolds: 10, Seed: 1, Clips: 1}
}

func TestTable1CensusShape(t *testing.T) {
	census, err := Table1(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(census) != 10 {
		t.Fatalf("species = %d", len(census))
	}
	for _, c := range census {
		if c.Name == "" {
			t.Errorf("%s missing common name", c.Code)
		}
		if c.Ensembles < 1 || c.Patterns < c.Ensembles {
			t.Errorf("%s: bad counts %+v", c.Code, c)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Dataset+"/"+r.Protocol] = true
		if r.Result.MeanAccuracy < 0 || r.Result.MeanAccuracy > 1 {
			t.Errorf("%s %s: accuracy %v", r.Dataset, r.Protocol, r.Result.MeanAccuracy)
		}
	}
	for _, want := range []string{
		"Pattern/Leave-one-out", "Pattern/Resubstitution",
		"Ensemble/Leave-one-out", "Ensemble/Resubstitution",
		"PAA Pattern/Leave-one-out", "PAA Pattern/Resubstitution",
		"PAA Ensemble/Leave-one-out", "PAA Ensemble/Resubstitution",
	} {
		if !seen[want] {
			t.Errorf("missing row %s", want)
		}
	}
}

func TestTable3MatrixShape(t *testing.T) {
	m, err := Table3(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Labels) != 10 {
		t.Fatalf("labels = %v", m.Labels)
	}
	if m.Accuracy() <= 0.1 {
		t.Errorf("accuracy %v at or below chance", m.Accuracy())
	}
	if !strings.Contains(m.Format(), "AMGO") {
		t.Error("Format missing species")
	}
}

func TestReductionHeadline(t *testing.T) {
	r, err := Reduction(Config{Seed: 1, Clips: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.SamplesIn == 0 || r.SamplesKept == 0 {
		t.Fatalf("degenerate reduction run: %+v", r)
	}
	// The paper reports 80.6%; the synthetic substrate should land in the
	// same regime.
	if r.Reduction < 0.6 || r.Reduction > 0.97 {
		t.Errorf("reduction = %v, want within [0.6, 0.97]", r.Reduction)
	}
	if r.Ensembles == 0 {
		t.Error("no ensembles extracted")
	}
}

func TestFigure5Topology(t *testing.T) {
	p := Figure5Pipeline()
	topo := p.Topology()
	for _, op := range []string{"saxanomaly", "trigger", "cutter", "reslice",
		"welchwindow", "float2cplx", "dft", "cabs", "cutout", "paa", "rec2vect"} {
		if !strings.Contains(topo, op) {
			t.Errorf("topology missing %s: %s", op, topo)
		}
	}
}

func TestFigure6Data(t *testing.T) {
	fig, err := Figure6(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Ensembles == 0 {
		t.Fatal("no ensembles")
	}
	if len(fig.Trigger) != len(fig.Masked) {
		t.Fatal("trigger/masked length mismatch")
	}
	var high int
	for i, v := range fig.Trigger {
		if v == 1 {
			high++
			continue
		}
		if fig.Masked[i] != 0 {
			t.Fatal("masked signal nonzero outside trigger-high region")
		}
	}
	if high == 0 {
		t.Error("trigger never high")
	}
	if len(fig.Events) == 0 {
		t.Error("no ground truth events")
	}
}

func TestOscillogram(t *testing.T) {
	sig := make([]float64, 1000)
	for i := 400; i < 600; i++ {
		sig[i] = 1
	}
	art := Oscillogram(sig, 50, 5)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 11 {
		t.Fatalf("rows = %d, want 11", len(lines))
	}
	if !strings.Contains(lines[0], "|") {
		t.Error("peak row missing bars")
	}
	if !strings.Contains(lines[5], "-") {
		t.Error("midline missing")
	}
	if Oscillogram(nil, 10, 5) != "" {
		t.Error("empty input should render empty")
	}
}

func TestBinaryTrace(t *testing.T) {
	sig := []float64{0, 0, 1, 1, 0, 0}
	trace := BinaryTrace(sig, 6)
	lines := strings.Split(strings.TrimRight(trace, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "#") || !strings.Contains(lines[1], "_") {
		t.Errorf("trace rendering:\n%s", trace)
	}
	if BinaryTrace(nil, 5) != "" {
		t.Error("empty trace should be empty")
	}
}

func TestPAASpectrogramReducesBins(t *testing.T) {
	fig, err := Figure6(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = fig
}
