// Package experiments implements the paper's evaluation section as
// reusable functions shared by cmd/experiments and the benchmark harness:
// each table and figure of the paper maps to one entry point here.
package experiments

import (
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/eval"
	"repro/internal/meso"
	"repro/internal/ops"
	"repro/internal/pipeline"
	"repro/internal/synth"
	"repro/internal/timeseries"
)

// Config scales the experiments. Scale 1 with the paper's repetition
// counts reproduces the full protocol.
type Config struct {
	Scale     float64 // fraction of Table 1 counts (default 0.15)
	LOOReps   int     // paper: 20
	ResubReps int     // paper: 100
	MaxFolds  int     // 0 = every fold, as in the paper
	Seed      int64
	Clips     int // clips for the reduction experiment
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.15
	}
	if c.LOOReps == 0 {
		c.LOOReps = 2
	}
	if c.ResubReps == 0 {
		c.ResubReps = 10
	}
	if c.Clips == 0 {
		c.Clips = 8
	}
	return c
}

func (c Config) counts() []core.SpeciesCounts {
	if c.Scale >= 1 {
		return core.PaperCounts()
	}
	return core.ScaleCounts(core.PaperCounts(), c.Scale)
}

// MesoConfig is the classifier configuration used across the
// classification experiments.
func MesoConfig() meso.Config {
	return meso.Config{DeltaFraction: 0.45, Vote: meso.VoteSphereMajority}
}

// Table1 builds the experimental dataset and returns its census, which at
// Scale 1 equals the paper's Table 1 exactly.
func Table1(cfg Config) ([]core.SpeciesCounts, error) {
	cfg = cfg.withDefaults()
	ds, err := core.BuildDataset(core.DatasetConfig{
		Counts:    cfg.counts(),
		PAAFactor: 10,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	census := core.CensusOf(ds)
	// Reattach common names.
	names := map[string]string{}
	for _, c := range core.PaperCounts() {
		names[c.Code] = c.Name
	}
	for i := range census {
		census[i].Name = names[census[i].Code]
	}
	return census, nil
}

// Table2Row is one row of Table 2.
type Table2Row struct {
	Dataset  string // "Pattern", "Ensemble", "PAA Pattern", "PAA Ensemble"
	Protocol string // "Leave-one-out" or "Resubstitution"
	Result   *eval.Result
}

// Table2 runs the four data sets through both protocols.
func Table2(cfg Config) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	var rows []Table2Row
	for _, variant := range []struct {
		name string
		paa  int
	}{
		{"Pattern", 1},
		{"Ensemble", 1},
		{"PAA Pattern", 10},
		{"PAA Ensemble", 10},
	} {
		ds, err := core.BuildDataset(core.DatasetConfig{
			Counts:    cfg.counts(),
			PAAFactor: variant.paa,
			Seed:      cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		isEnsemble := strings.Contains(variant.name, "Ensemble")
		if isEnsemble {
			loo, err := eval.LeaveOneOutEnsembles(ds.Ensembles, eval.Options{
				Meso: MesoConfig(), Repetitions: cfg.LOOReps, Seed: cfg.Seed, MaxFolds: cfg.MaxFolds,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table2Row{variant.name, "Leave-one-out", loo})
			resub, err := eval.ResubstitutionEnsembles(ds.Ensembles, eval.Options{
				Meso: MesoConfig(), Repetitions: cfg.ResubReps, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table2Row{variant.name, "Resubstitution", resub})
		} else {
			pats := ds.Patterns()
			loo, err := eval.LeaveOneOutPatterns(pats, eval.Options{
				Meso: MesoConfig(), Repetitions: cfg.LOOReps, Seed: cfg.Seed, MaxFolds: cfg.MaxFolds,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table2Row{variant.name, "Leave-one-out", loo})
			resub, err := eval.ResubstitutionPatterns(pats, eval.Options{
				Meso: MesoConfig(), Repetitions: cfg.ResubReps, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table2Row{variant.name, "Resubstitution", resub})
		}
	}
	return rows, nil
}

// Table3 computes the confusion matrix for PAA ensembles under
// leave-one-out, the paper's Table 3.
func Table3(cfg Config) (*eval.ConfusionMatrix, error) {
	cfg = cfg.withDefaults()
	ds, err := core.BuildDataset(core.DatasetConfig{
		Counts:    cfg.counts(),
		PAAFactor: 10,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	res, err := eval.LeaveOneOutEnsembles(ds.Ensembles, eval.Options{
		Meso: MesoConfig(), Repetitions: cfg.LOOReps, Seed: cfg.Seed, MaxFolds: cfg.MaxFolds,
	})
	if err != nil {
		return nil, err
	}
	return res.Confusion, nil
}

// ReductionResult is the data-reduction headline measurement.
type ReductionResult struct {
	Clips       int
	Seconds     float64
	SamplesIn   uint64
	SamplesKept uint64
	Ensembles   int
	Reduction   float64
}

// Reduction extracts ensembles from synthetic 30-second station clips and
// measures the retained fraction (paper: 80.6% discarded).
func Reduction(cfg Config) (*ReductionResult, error) {
	cfg = cfg.withDefaults()
	station := synth.NewStation("kbs-sim", cfg.Seed, synth.ClipConfig{})
	var clips []ops.Clip
	var seconds float64
	for i := 0; i < cfg.Clips; i++ {
		clip, id, err := station.NextClip()
		if err != nil {
			return nil, err
		}
		clips = append(clips, ops.Clip{
			ID:         id,
			Station:    station.Name,
			SampleRate: clip.SampleRate,
			Samples:    clip.Samples,
		})
		seconds += clip.Seconds()
	}
	ext, err := core.NewExtractor(ops.DefaultExtractConfig()).Extract(clips...)
	if err != nil {
		return nil, err
	}
	return &ReductionResult{
		Clips:       cfg.Clips,
		Seconds:     seconds,
		SamplesIn:   ext.SamplesIn,
		SamplesKept: ext.SamplesKept,
		Ensembles:   len(ext.Ensembles),
		Reduction:   ext.Reduction(),
	}, nil
}

// Figure5Pipeline composes (without running) the paper's full analysis
// pipeline for topology display.
func Figure5Pipeline() *pipeline.Pipeline {
	extractOps, _, err := ops.ExtractionOps(ops.DefaultExtractConfig())
	if err != nil {
		panic("experiments: " + err.Error())
	}
	station := synth.NewStation("kbs-sim", 0, synth.ClipConfig{})
	return pipeline.New().
		SetSource(&ops.StationSource{Station: station, ClipCount: 1}).
		AppendOps("ensemble-extraction", extractOps...).
		AppendOps("spectral", ops.SpectralOps(10)...).
		SetSink(ops.NewEnsembleCollector())
}

// Figure6Data is the trigger/ensemble view of one clip.
type Figure6Data struct {
	Trigger   []float64 // 0/1 per sample
	Masked    []float64 // original signal where trigger=1, else 0
	Ensembles int
	Reduction float64
	Events    []Figure6Event
}

// Figure6Event is ground truth for display.
type Figure6Event struct {
	Species          string
	StartSec, EndSec float64
}

// Figure6 runs extraction on one synthetic clip and reconstructs the
// trigger trace and masked signal of the paper's Figure 6.
func Figure6(cfg Config) (*Figure6Data, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	clip, err := synth.GenerateClip(rng, synth.ClipConfig{Seconds: 10, Events: 3})
	if err != nil {
		return nil, err
	}
	ext, err := core.NewExtractor(ops.DefaultExtractConfig()).Extract(ops.Clip{
		ID:         "fig6",
		SampleRate: clip.SampleRate,
		Samples:    clip.Samples,
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure6Data{
		Trigger:   make([]float64, len(clip.Samples)),
		Masked:    make([]float64, len(clip.Samples)),
		Ensembles: len(ext.Ensembles),
		Reduction: ext.Reduction(),
	}
	for _, e := range ext.Ensembles {
		start := int(e.StartSec * clip.SampleRate)
		for i := 0; i < len(e.Samples) && start+i < len(clip.Samples); i++ {
			fig.Trigger[start+i] = 1
			fig.Masked[start+i] = clip.Samples[start+i]
		}
	}
	for _, ev := range clip.Events {
		fig.Events = append(fig.Events, Figure6Event{
			Species:  ev.Species,
			StartSec: float64(ev.Start) / clip.SampleRate,
			EndSec:   float64(ev.End) / clip.SampleRate,
		})
	}
	return fig, nil
}

// Oscillogram renders a normalized amplitude plot as ASCII art (the top
// panel of Figure 2), width columns by 2*halfHeight+1 rows.
func Oscillogram(samples []float64, width, halfHeight int) string {
	if len(samples) == 0 || width <= 0 || halfHeight <= 0 {
		return ""
	}
	// Per-column peak envelope (positive and negative).
	hi := make([]float64, width)
	lo := make([]float64, width)
	var peak float64
	for c := 0; c < width; c++ {
		a := c * len(samples) / width
		b := (c + 1) * len(samples) / width
		for _, v := range samples[a:b] {
			if v > hi[c] {
				hi[c] = v
			}
			if v < lo[c] {
				lo[c] = v
			}
		}
		if hi[c] > peak {
			peak = hi[c]
		}
		if -lo[c] > peak {
			peak = -lo[c]
		}
	}
	if peak == 0 {
		peak = 1
	}
	rows := 2*halfHeight + 1
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		level := float64(halfHeight-r) / float64(halfHeight) // +1 .. -1
		for c := 0; c < width; c++ {
			h := hi[c] / peak
			l := lo[c] / peak
			switch {
			case level == 0:
				sb.WriteByte('-')
			case level > 0 && h >= level:
				sb.WriteByte('|')
			case level < 0 && l <= level:
				sb.WriteByte('|')
			default:
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// BinaryTrace renders a 0/1 signal as a two-row trace (the top panel of
// Figure 6).
func BinaryTrace(signal []float64, width int) string {
	if len(signal) == 0 || width <= 0 {
		return ""
	}
	cells := make([]bool, width)
	for c := 0; c < width; c++ {
		a := c * len(signal) / width
		b := (c + 1) * len(signal) / width
		for _, v := range signal[a:b] {
			if v >= 0.5 {
				cells[c] = true
				break
			}
		}
	}
	var hiRow, loRow strings.Builder
	for _, on := range cells {
		if on {
			hiRow.WriteByte('#')
			loRow.WriteByte(' ')
		} else {
			hiRow.WriteByte(' ')
			loRow.WriteByte('_')
		}
	}
	return "1 " + hiRow.String() + "\n0 " + loRow.String() + "\n"
}

// PAASpectrogram reduces every spectrogram column by the given PAA factor
// (Figure 3: the Figure 2 spectrogram after conversion to PAA
// representation).
func PAASpectrogram(sg *dsp.Spectrogram, factor int) *dsp.Spectrogram {
	out := &dsp.Spectrogram{BinHz: sg.BinHz * float64(factor), HopSec: sg.HopSec}
	for _, col := range sg.Columns {
		reduced, err := timeseries.PAAReduce(col, factor)
		if err != nil {
			// Columns are non-empty whenever sg came from
			// ComputeSpectrogram.
			panic("experiments: " + err.Error())
		}
		out.Columns = append(out.Columns, reduced)
	}
	return out
}
