// Survey: a distributed bird survey over TCP. Three pipeline stages run
// as independent goroutines connected by streamin/streamout exactly as
// they would run on three hosts (the paper's Figure 5 deployment): a
// sensor station transmits clips, a relay host extracts ensembles and
// computes spectral patterns, and an observatory host classifies every
// ensemble against a trained MESO memory and prints the species survey.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/meso"
	"repro/internal/ops"
	"repro/internal/pipeline"
	"repro/internal/record"
	"repro/internal/synth"
)

func main() {
	// Train the observatory's classifier on a synthetic reference corpus.
	counts := core.ScaleCounts(core.PaperCounts(), 0.06)
	ds, err := core.BuildDataset(core.DatasetConfig{Counts: counts, PAAFactor: 10, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	classifier := core.NewClassifier(meso.Config{DeltaFraction: 0.45})
	for _, e := range ds.Ensembles {
		if err := classifier.TrainEnsemble(e); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("observatory: trained on %d ensembles of %d species\n",
		len(ds.Ensembles), len(classifier.MESO().Labels()))

	// --- Observatory host: classify incoming patterns. ---
	observatoryIn, err := pipeline.NewStreamIn("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	observatoryIn.MaxConns = 1
	surveyCounts := make(map[string]int)
	col := ops.NewEnsembleCollector()
	classify := pipeline.SinkFunc{SinkName: "observatory", Fn: func(r *record.Record) error {
		if err := col.Consume(r); err != nil {
			return err
		}
		if r.Kind == record.KindCloseScope && r.ScopeType == record.ScopeEnsemble {
			all := col.Ensembles()
			e := all[len(all)-1]
			if len(e.Patterns) == 0 {
				return nil
			}
			vote, err := classifier.ClassifyEnsemble(e.Patterns)
			if err != nil {
				return err
			}
			surveyCounts[vote.Label]++
			fmt.Printf("observatory: ensemble at %7.2fs -> %s (%.0f%% of %d votes)\n",
				e.StartSec, vote.Label, vote.Confidence*100, len(e.Patterns))
		}
		return nil
	}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := pipeline.New().SetSource(observatoryIn).SetSink(classify)
		if err := p.Run(context.Background()); err != nil {
			log.Println("observatory:", err)
		}
	}()

	// --- Relay host: extraction + spectral processing. ---
	reg := pipeline.NewRegistry()
	reg.Register("analysis", func() []pipeline.Operator {
		extractOps, _, err := ops.ExtractionOps(ops.DefaultExtractConfig())
		if err != nil {
			panic(err)
		}
		return append(extractOps, ops.SpectralOps(10)...)
	})
	relay := pipeline.NewNode("relay", reg)
	relayAddr, err := relay.Host("analysis", "analysis", "127.0.0.1:0", observatoryIn.Addr())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relay: hosting analysis segment on %s\n", relayAddr)

	// --- Sensor station: transmit clips over TCP. ---
	station := synth.NewStation("kbs-07", 99, synth.ClipConfig{Seconds: 20, Events: 3})
	stationOut := pipeline.NewStreamOut(relayAddr)
	src := &ops.StationSource{Station: station, ClipCount: 2}
	p := pipeline.New().SetSource(src).SetSink(stationOut)
	fmt.Println("station: transmitting 2 clips")
	if err := p.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	stationOut.Close()

	// Drain: stop the relay (its streamout closes, ending the
	// observatory's single allowed connection).
	if err := relay.StopAll(); err != nil {
		log.Println("relay:", err)
	}
	wg.Wait()

	fmt.Println("\nspecies survey:")
	species := make([]string, 0, len(surveyCounts))
	for s := range surveyCounts {
		species = append(species, s)
	}
	sort.Strings(species)
	for _, s := range species {
		fmt.Printf("  %s: %d vocalization(s)\n", s, surveyCounts[s])
	}
}
