// Multistation: demonstrates the multi-pipeline control plane — one
// coordinator maintaining many stations' pipelines over one shared node
// pool. Eight stations each stream through their own relay pipeline
// (p1..p8), placed across four nodes by the load-aware policy; every
// station follows only its own pipeline's entry address. When one node
// is killed, only the pipelines it hosted are re-placed and re-spliced —
// the other stations' entry watches stay silent and their streams never
// move. A ninth pipeline is then added at runtime (the protocol v5
// pipeline_add verb) and removed again, without restarting anything.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pipeline"
	"repro/internal/record"
	"repro/internal/river"
)

const (
	nStations = 8
	nNodes    = 4
)

// stationStats is one pipeline's end-to-end accounting: records counted
// at its sink, scope repairs observed there, and how many entry updates
// its station's watch received.
type stationStats struct {
	mu       sync.Mutex
	received int
	repairs  int
	updates  atomic.Int32
}

func (s *stationStats) consume(r *record.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch r.Kind {
	case record.KindData:
		s.received++
	case record.KindBadCloseScope:
		s.repairs++
	}
	return nil
}

func (s *stationStats) counts() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received, s.repairs
}

// runStation follows pipeID's entry address and streams numbered records
// through it until ctx is cancelled, re-routing whenever the control
// plane moves the pipeline's first segment.
func runStation(ctx context.Context, coordAddr, pipeID string, st *stationStats) {
	entryCh := make(chan string, 8)
	go func() {
		_ = river.WatchPipelineEntry(ctx, coordAddr, pipeID, func(a string, _ bool) {
			st.updates.Add(1)
			select {
			case entryCh <- a:
			default:
			}
		})
	}()
	var entry string
	select {
	case entry = <-entryCh:
	case <-ctx.Done():
		return
	}
	out := pipeline.NewStreamOutBatched(entry, record.DefaultBatchConfig())
	defer out.Close()
	go func() {
		for {
			select {
			case a := <-entryCh:
				out.Redirect(a)
			case <-ctx.Done():
				return
			}
		}
	}()
	_ = out.Consume(record.NewOpenScope(record.ScopeSession, 0))
	for i := 0; ; i++ {
		select {
		case <-ctx.Done():
			_ = out.Consume(record.NewCloseScope(record.ScopeSession, 0))
			_ = out.Flush()
			return
		default:
		}
		r := record.NewData(record.SubtypeAudio)
		r.SetFloat64s([]float64{float64(i)})
		_ = out.Consume(r)
		time.Sleep(2 * time.Millisecond)
	}
}

func main() {
	// One terminal sink per pipeline, so the accounting is per station.
	pipeIDs := make([]string, nStations)
	stats := make(map[string]*stationStats, nStations)
	specs := make([]river.PipelineSpec, nStations)
	var termWG sync.WaitGroup
	for i := range pipeIDs {
		id := fmt.Sprintf("p%d", i+1)
		pipeIDs[i] = id
		st := &stationStats{}
		stats[id] = st
		term, err := pipeline.NewStreamIn("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer term.Close()
		termWG.Add(1)
		go func() {
			defer termWG.Done()
			_ = pipeline.New().SetSource(term).
				SetSink(pipeline.SinkFunc{SinkName: "count", Fn: st.consume}).
				Run(context.Background())
		}()
		specs[i] = river.PipelineSpec{
			ID:       id,
			Segments: []river.SegmentSpec{{Name: "relay", Type: "relay"}},
			SinkAddr: term.Addr(),
		}
	}

	// One coordinator, one shared node pool, one load-aware placer.
	coord, err := river.NewCoordinator(river.Config{
		Pipelines:         specs,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
		MinNodes:          nNodes,
		Placer:            river.LoadAware{},
		Logf:              log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	reg := pipeline.NewRegistry()
	reg.Register("relay", func() []pipeline.Operator { return []pipeline.Operator{pipeline.Relay{}} })
	type liveAgent struct {
		cancel context.CancelFunc
		done   chan error
	}
	agents := map[string]*liveAgent{}
	for i := 1; i <= nNodes; i++ {
		name := fmt.Sprintf("node-%d", i)
		agent := river.NewAgent(name, coord.Addr(), reg)
		agent.ReconnectMin = 50 * time.Millisecond
		agent.ReconnectMax = 500 * time.Millisecond
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- agent.Run(ctx) }()
		agents[name] = &liveAgent{cancel: cancel, done: done}
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := coord.WaitPlaced(wctx); err != nil {
		log.Fatal(err)
	}

	// byNode maps node -> the pipelines it hosts.
	byNode := func(c *river.Coordinator) map[string][]string {
		out := map[string][]string{}
		for _, pl := range c.Status().Pipelines {
			for _, p := range pl.Placements {
				if p.Placed {
					out[p.Node] = append(out[p.Node], pl.ID)
				}
			}
		}
		for _, ids := range out {
			sort.Strings(ids)
		}
		return out
	}
	layout := byNode(coord)
	fmt.Printf("phase 1: %d pipelines placed across %d nodes:\n", nStations, nNodes)
	for i := 1; i <= nNodes; i++ {
		name := fmt.Sprintf("node-%d", i)
		fmt.Printf("  %s hosts %v\n", name, layout[name])
	}

	// Every station streams through its own pipeline.
	stationCtx, stopStations := context.WithCancel(context.Background())
	defer stopStations()
	for _, id := range pipeIDs {
		go runStation(stationCtx, coord.Addr(), id, stats[id])
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		flowing := 0
		for _, id := range pipeIDs {
			if n, _ := stats[id].counts(); n > 0 {
				flowing++
			}
		}
		if flowing == nStations {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("not every station's records reached its sink")
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("phase 1: all %d stations streaming through one coordinator\n", nStations)

	// Phase 2: kill one node mid-stream. Only its pipelines may move.
	victim := fmt.Sprintf("node-%d", nNodes)
	affected := layout[victim]
	updatesBefore := map[string]int32{}
	for _, id := range pipeIDs {
		updatesBefore[id] = stats[id].updates.Load()
	}
	fmt.Printf("phase 2: killing %s (hosts %v) under streaming load\n", victim, affected)
	killedAt := time.Now()
	agents[victim].cancel()
	<-agents[victim].done
	delete(agents, victim)

	deadline = time.Now().Add(10 * time.Second)
	for {
		if after := byNode(coord); len(after[victim]) == 0 {
			placed := 0
			for _, ids := range after {
				placed += len(ids)
			}
			if placed == nStations {
				break
			}
		}
		if time.Now().After(deadline) {
			log.Fatal("coordinator did not re-place the dead node's pipelines")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("phase 2: %v re-placed %.0fms after the kill\n", affected, time.Since(killedAt).Seconds()*1000)

	// Isolation: unaffected stations' entry watches saw nothing.
	isAffected := map[string]bool{}
	for _, id := range affected {
		isAffected[id] = true
	}
	for _, id := range pipeIDs {
		delta := stats[id].updates.Load() - updatesBefore[id]
		switch {
		case isAffected[id] && delta == 0:
			log.Fatalf("affected pipeline %s never saw its new entry", id)
		case !isAffected[id] && delta != 0:
			log.Fatalf("unaffected pipeline %s saw %d entry update(s); failover must be isolated", id, delta)
		}
	}
	fmt.Printf("phase 2: only the affected stations saw entry updates; the other %d streams never moved\n",
		nStations-len(affected))
	time.Sleep(500 * time.Millisecond)

	// Phase 3: grow the fleet at runtime — a ninth pipeline via the
	// pipeline_add verb, no restart, then remove it again.
	term9, err := pipeline.NewStreamIn("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer term9.Close()
	st9 := &stationStats{}
	stats["p9"] = st9
	termWG.Add(1)
	go func() {
		defer termWG.Done()
		_ = pipeline.New().SetSource(term9).
			SetSink(pipeline.SinkFunc{SinkName: "count", Fn: st9.consume}).
			Run(context.Background())
	}()
	if err := river.RequestPipelineAdd(coord.Addr(), river.PipelineSpec{
		ID:       "p9",
		Segments: []river.SegmentSpec{{Name: "relay", Type: "relay"}},
		SinkAddr: term9.Addr(),
	}, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	go runStation(stationCtx, coord.Addr(), "p9", st9)
	deadline = time.Now().Add(10 * time.Second)
	for {
		if n, _ := st9.counts(); n > 0 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("runtime-added pipeline never carried a record")
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println("phase 3: pipeline p9 added at runtime and carrying records")
	if err := river.RequestPipelineRemove(coord.Addr(), "p9", 10*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 3: pipeline p9 removed at runtime")

	// Teardown and report.
	stopStations()
	time.Sleep(200 * time.Millisecond)
	fmt.Printf("\n%-4s %8s %8s %8s\n", "pipe", "records", "repairs", "updates")
	for _, id := range append(append([]string(nil), pipeIDs...), "p9") {
		n, rep := stats[id].counts()
		fmt.Printf("%-4s %8d %8d %8d\n", id, n, rep, stats[id].updates.Load())
		if n == 0 {
			log.Fatalf("pipeline %s delivered nothing", id)
		}
		if !isAffected[id] && id != "p9" && rep != 0 {
			log.Fatalf("unaffected pipeline %s repaired %d scope(s); the node kill must not touch it", id, rep)
		}
	}
	for _, a := range agents {
		a.cancel()
		<-a.done
	}
	coord.Close()
	fmt.Println("\nmultistation: one coordinator, nine pipelines, one node kill — isolated recovery")
}
