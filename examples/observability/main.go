// Observability: demonstrates the self-monitoring loop end-to-end — a
// 3-replica relay pipeline under sustained load, with the coordinator
// serving Prometheus metrics and recording every control-plane
// transition as a typed event. One replica node is artificially slowed
// mid-stream: the coordinator's monitor (streaming z-score detectors
// over the telemetry already carried in heartbeats) flags the degrading
// node as an "anomaly" event while it is still alive — before failure
// detection would notice — and the /metrics scrape shows its backlog
// and per-node latency quantiles. The remediation policy then *acts* on
// the anomaly: it pre-emptively drains the flagged node (a zero-repair
// boundary splice), narrating every decision as a typed "remediation"
// event. By the time the degraded node is killed it hosts nothing, so
// its death is a non-event — no failover, no repair. The event log
// replays the whole history in order: register, place, anomaly,
// remediation, drain, drained. The sink audits that every record still
// arrived exactly once.
//
// The same stream is available against a real deployment via
// `dynriver events` (and `dynriver coord -react=drain -metrics-addr`
// for the live loop); examples/anomaly shows the detector family
// offline.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/record"
	"repro/internal/river"
)

// slowRelay is a record-preserving relay with a settable per-record
// delay — the knob that degrades one node on command.
type slowRelay struct{ delay *atomic.Int64 }

func (slowRelay) Name() string { return "relay" }

func (s slowRelay) Process(r *record.Record, out pipeline.Emitter) error {
	if d := s.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return out.Emit(r)
}

func waitUntil(what string, timeout time.Duration, cond func() bool) {
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// scrapeValue pulls one series' value out of a Prometheus text scrape.
func scrapeValue(scrape, series string) (string, bool) {
	for _, line := range strings.Split(scrape, "\n") {
		if strings.HasPrefix(line, series+" ") {
			return strings.TrimPrefix(line, series+" "), true
		}
	}
	return "", false
}

func eventLine(e obs.Event) string {
	parts := []string{}
	if e.Phase != "" {
		parts = append(parts, "phase="+e.Phase)
	}
	if e.Unit != "" {
		parts = append(parts, "unit="+e.Unit)
	}
	if e.Node != "" {
		parts = append(parts, "node="+e.Node)
	}
	if e.Metric != "" {
		// Metric/Value/Score already say everything Detail repeats.
		phase := ""
		if e.Phase != "" {
			phase = " phase=" + e.Phase
		}
		return fmt.Sprintf("%4d %-10s%s node=%s %s=%g z=%.1f", e.Seq, e.Type, phase, e.Node, e.Metric, e.Value, e.Score)
	}
	if e.Detail != "" {
		parts = append(parts, fmt.Sprintf("(%s)", e.Detail))
	}
	return fmt.Sprintf("%4d %-10s %s", e.Seq, e.Type, strings.Join(parts, " "))
}

func main() {
	// Terminal: audits exactly-once delivery by indexing payloads.
	terminal, err := pipeline.NewStreamIn("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	var mu sync.Mutex
	seen := make(map[int]int)
	repairs := 0
	verify := pipeline.SinkFunc{SinkName: "verify", Fn: func(r *record.Record) error {
		mu.Lock()
		defer mu.Unlock()
		switch r.Kind {
		case record.KindData:
			if v, err := r.Float64s(); err == nil && len(v) == 1 {
				seen[int(v[0])]++
			}
		case record.KindBadCloseScope:
			repairs++
		}
		return nil
	}}
	received := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(seen)
	}
	var termWG sync.WaitGroup
	termWG.Add(1)
	go func() {
		defer termWG.Done()
		_ = pipeline.New().SetSource(terminal).SetSink(verify).Run(context.Background())
	}()

	// Control plane with the full observability surface: a metrics
	// endpoint on a loopback port and the monitor sampling every 150ms.
	// The cadence is deliberately slow relative to the queue's fill rate
	// so a saturating node shows up as a level shift the z-score flags on
	// its first sample, not a ramp the EWMA baseline absorbs.
	coord, err := river.NewCoordinator(river.Config{
		Spec: river.PipelineSpec{
			Segments: []river.SegmentSpec{{Name: "relay", Type: "relay", Replicas: 3}},
			SinkAddr: terminal.Addr(),
		},
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		MinNodes:          4,
		DrainSettle:       150 * time.Millisecond,
		MetricsAddr:       "127.0.0.1:0",
		Monitor: river.MonitorConfig{
			Interval:  150 * time.Millisecond,
			Alpha:     0.1,
			Warmup:    8,
			Threshold: 6,
			Cooldown:  time.Minute,
		},
		// The acted-on half: anomalies trigger a pre-emptive drain of
		// the flagged node. MaxConcurrent 2 keeps a spurious blip on a
		// neighbor from starving the real victim's drain.
		Remediate: river.RemediateConfig{
			Mode:          river.RemediateDrain,
			Cooldown:      time.Minute,
			MaxConcurrent: 2,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	fmt.Printf("phase 1: metrics on http://%s/metrics (pprof on /debug/pprof)\n", coord.MetricsAddr())

	// Four nodes, each hosting a throttleable relay; only the eventual
	// victim's delay is ever set.
	type liveAgent struct {
		cancel context.CancelFunc
		done   chan error
		delay  *atomic.Int64
	}
	agents := map[string]*liveAgent{}
	for _, name := range []string{"host-a", "host-b", "host-c", "host-d"} {
		delay := &atomic.Int64{}
		reg := pipeline.NewRegistry()
		reg.Register("relay", func() []pipeline.Operator {
			return []pipeline.Operator{slowRelay{delay: delay}}
		})
		agent := river.NewAgent(name, coord.Addr(), reg)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- agent.Run(ctx) }()
		agents[name] = &liveAgent{cancel: cancel, done: done, delay: delay}
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := coord.WaitPlaced(wctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 1: replicated topology placed, event log recording")

	// Sustained numbered load through the splitter entry.
	out := pipeline.NewStreamOutBatched(coord.EntryAddr(), record.DefaultBatchConfig())
	defer out.Close()
	if err := out.Consume(record.NewOpenScope(record.ScopeSession, 0)); err != nil {
		log.Fatal(err)
	}
	stop := make(chan struct{})
	sentCh := make(chan int, 1)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				sentCh <- i
				return
			default:
			}
			r := record.NewData(record.SubtypeAudio)
			r.SetFloat64s([]float64{float64(i)})
			if err := out.Consume(r); err != nil {
				log.Fatalf("load: %v", err)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	waitUntil("records flowing", 10*time.Second, func() bool { return received() >= 300 })
	time.Sleep(1200 * time.Millisecond) // let the monitor baselines warm on healthy traffic

	// Phase 2: degrade a replica-only node (replica legs are drainable;
	// splitter/merger endpoints are not) and wait for the monitor to
	// flag it. Failure detection must NOT have fired — the whole point is
	// catching the node while it is still alive.
	endpointNodes := map[string]bool{}
	for _, p := range coord.Status().Placements {
		if p.Role == river.RoleSplit || p.Role == river.RoleMerge {
			endpointNodes[p.Node] = true
		}
	}
	var victim, victimUnit string
	for _, p := range coord.Status().Placements {
		if p.Role == river.RoleReplica && p.Placed && !endpointNodes[p.Node] {
			victim, victimUnit = p.Node, p.Seg
			break
		}
	}
	if victim == "" {
		log.Fatal("no node hosts only a replica")
	}
	fmt.Printf("phase 2: slowing %s (hosts %s) by 50ms/record under load\n", victim, victimUnit)
	throttledAt := time.Now()
	agents[victim].delay.Store(int64(50 * time.Millisecond))

	var anomaly obs.Event
	waitUntil("anomaly event for the slowed node", 15*time.Second, func() bool {
		events, err := river.FetchEvents(coord.Addr(), "", 0, 5*time.Second)
		if err != nil {
			return false
		}
		for _, e := range events {
			if e.Type == obs.EventFailover {
				log.Fatalf("failure detection beat the monitor: %+v", e)
			}
			if e.Type == obs.EventAnomaly && e.Node == victim && e.TimeMS >= throttledAt.UnixMilli() {
				anomaly = e
				return true
			}
		}
		return false
	})
	fmt.Printf("phase 2: anomaly flagged %.0fms after throttling: node=%s %s=%g (z-score %.1f)\n",
		time.Since(throttledAt).Seconds()*1000, anomaly.Node, anomaly.Metric, anomaly.Value, anomaly.Score)

	// The metrics endpoint shows the same backlog to any scraper.
	resp, err := http.Get("http://" + coord.MetricsAddr() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	// (e2e quantiles need a probe source — `station -probes` — so only
	// the per-unit latency gauge is live in this example.)
	for _, gauge := range []string{
		"dynriver_node_queue_depth", "dynriver_node_queue_peak",
		"dynriver_node_latency_p99_seconds",
	} {
		series := fmt.Sprintf("%s{node=%q}", gauge, victim)
		if v, ok := scrapeValue(string(body), series); ok {
			fmt.Printf("phase 2: /metrics %s %s\n", series, v)
		}
	}

	// Phase 3: the remediation policy acts on the anomaly — triggered,
	// started, then a zero-repair drain of the victim's unit. Failure
	// detection must stay silent throughout: the node is slow, not dead.
	var remStarted, drainedSeq uint64
	waitUntil("remediation drain of "+victim, 20*time.Second, func() bool {
		events, err := river.FetchEvents(coord.Addr(), "", 0, 5*time.Second)
		if err != nil {
			return false
		}
		for _, e := range events {
			if e.Type == obs.EventFailover {
				log.Fatalf("failure detection fired during remediation: %+v", e)
			}
			switch {
			case e.Type == obs.EventRemediation && e.Phase == obs.RemPhaseStarted && e.Node == victim:
				remStarted = e.Seq
			case e.Type == obs.EventDrained && e.Unit == victimUnit:
				drainedSeq = e.Seq
			}
		}
		return remStarted != 0 && drainedSeq != 0
	})
	fmt.Printf("phase 3: remediation drained %s off %s %.0fms after throttling\n",
		victimUnit, victim, time.Since(throttledAt).Seconds()*1000)
	waitUntil("victim idle, 3 replicas elsewhere", 10*time.Second, func() bool {
		alive := 0
		for _, p := range coord.Status().Placements {
			if p.Node == victim {
				return false
			}
			if p.Role == river.RoleReplica && p.Placed {
				alive++
			}
		}
		return alive == 3
	})

	// Phase 4: the degraded node dies — hosting nothing. A pre-emptively
	// drained node's death is a non-event: no failover, no repair.
	fmt.Printf("phase 4: killing %s (now idle)\n", victim)
	agents[victim].cancel()
	<-agents[victim].done
	delete(agents, victim)
	post := received()
	waitUntil("records flowing post-kill", 10*time.Second, func() bool { return received() >= post+300 })

	// Drain the load and audit exactly-once delivery.
	close(stop)
	sent := <-sentCh
	if err := out.Consume(record.NewCloseScope(record.ScopeSession, 0)); err != nil {
		log.Fatal(err)
	}
	if err := out.Flush(); err != nil {
		log.Fatal(err)
	}
	waitUntil("sink drained", 10*time.Second, func() bool { return received() >= sent })

	// Replay the recorded history — what `dynriver events` prints.
	events, err := river.FetchEvents(coord.Addr(), "", 0, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nevent log replay:")
	for _, e := range events {
		fmt.Println("  " + eventLine(e))
		// No node holding units ever died, so any failover means the
		// pre-emptive drain failed at its one job.
		if e.Type == obs.EventFailover {
			log.Fatalf("unexpected failover in history: %+v", e)
		}
	}
	if anomaly.Seq >= remStarted || remStarted >= drainedSeq {
		log.Fatalf("history out of order: anomaly=%d remediation-started=%d drained=%d",
			anomaly.Seq, remStarted, drainedSeq)
	}

	mu.Lock()
	missing, duplicated := 0, 0
	for i := 0; i < sent; i++ {
		switch seen[i] {
		case 0:
			missing++
		case 1:
		default:
			duplicated++
		}
	}
	rep := repairs
	mu.Unlock()
	fmt.Printf("\naudit: sent=%d missing=%d duplicated=%d repairs=%d\n", sent, missing, duplicated, rep)
	if missing != 0 || duplicated != 0 || rep != 0 {
		log.Fatal("exactly-once audit failed")
	}

	for _, a := range agents {
		a.cancel()
		<-a.done
	}
	coord.Close()
	fmt.Println("\nobservability: the monitor flagged the degrading node, remediation " +
		"drained it while still alive, and its death cost nothing — the event log " +
		"told the whole story in order")
}
