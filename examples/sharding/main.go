// Sharding: demonstrates keyed stream sharding with the elastic
// autoscaler — the data-parallel answer to a hot segment. Where
// replication (examples/replication) runs N identical copies for fault
// tolerance, a sharded segment splits the work: a partitioner hashes
// every record's SourceID to one of K parallel shard legs and annotates
// it with a global sequence number, and a collector fans the legs back
// in, restoring the exact input order through the same seq-indexed
// reorder ring the replica merger uses. K is elastic: the coordinator's
// autoscaler watches the legs' queue saturation riding the ordinary
// heartbeats, grows the group under sustained load through the same
// declarative reconcile that places any unit, and shrinks it back when
// the load passes — flushing the retired legs so the resize costs
// nothing. The demo saturates a 2-shard group (every record made
// artificially expensive), watches it scale out to 4, drops the load,
// watches it scale back in, and audits exactly-once delivery across
// both resizes.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/record"
	"repro/internal/river"
)

// gatedRelay is a record-preserving relay whose per-record cost is a
// runtime dial — the demo's load lever.
type gatedRelay struct{ delay *atomic.Int64 }

func (gatedRelay) Name() string { return "gated-relay" }

func (g gatedRelay) Process(r *record.Record, out pipeline.Emitter) error {
	if d := g.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return out.Emit(r)
}

func main() {
	// Registry: sharded segments must be record-preserving. The per-record
	// delay is the load lever — on, each leg is compute-bound; off, the
	// relay is free.
	var delay atomic.Int64
	reg := pipeline.NewRegistry()
	reg.Register("work", func() []pipeline.Operator {
		return []pipeline.Operator{gatedRelay{delay: &delay}}
	})

	// Terminal: verifies exactly-once delivery by indexing payloads.
	terminal, err := pipeline.NewStreamIn("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	var mu sync.Mutex
	seen := make(map[int]int)
	repairs := 0
	verify := pipeline.SinkFunc{SinkName: "verify", Fn: func(r *record.Record) error {
		mu.Lock()
		defer mu.Unlock()
		switch r.Kind {
		case record.KindData:
			if v, err := r.Float64s(); err == nil && len(v) == 1 {
				seen[int(v[0])]++
			}
		case record.KindBadCloseScope:
			repairs++
		}
		return nil
	}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = pipeline.New().SetSource(terminal).SetSink(verify).Run(context.Background())
	}()

	// Control plane: one segment at 2 shards, autoscaling between 2 and 4
	// on a 0.10..0.50 saturation band. Five nodes so K=4 legs still land
	// on distinct hosts (hard spread).
	coord, err := river.NewCoordinator(river.Config{
		Spec: river.PipelineSpec{
			Segments: []river.SegmentSpec{{Name: "work", Type: "work", Shards: 2}},
			SinkAddr: terminal.Addr(),
		},
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		MinNodes:          5,
		Autoscale: river.AutoscaleConfig{
			Enabled: true, Interval: 100 * time.Millisecond,
			LowWater: 0.10, HighWater: 0.50,
			MinShards: 2, MaxShards: 4, Step: 2,
			Cooldown: time.Second, SustainTicks: 3,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	agents := map[string]context.CancelFunc{}
	var agentWG sync.WaitGroup
	for _, name := range []string{"host-a", "host-b", "host-c", "host-d", "host-e"} {
		agent := river.NewAgent(name, coord.Addr(), reg)
		ctx, cancel := context.WithCancel(context.Background())
		agents[name] = cancel
		agentWG.Add(1)
		go func() { defer agentWG.Done(); _ = agent.Run(ctx) }()
	}
	defer func() {
		for _, cancel := range agents {
			cancel()
		}
		agentWG.Wait()
	}()
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := coord.WaitPlaced(wctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 1: sharded topology placed at K=2")
	for _, p := range coord.Status().Placements {
		fmt.Printf("  %-16s (%s) on %s at %s\n", p.Seg, p.Role, p.Node, p.Addr)
	}

	shardLegs := func() int {
		n := 0
		for _, p := range coord.Status().Placements {
			if p.Role == river.RoleShard && p.Placed {
				n++
			}
		}
		return n
	}
	waitLegs := func(k int, what string) {
		deadline := time.Now().Add(30 * time.Second)
		for shardLegs() != k {
			if time.Now().After(deadline) {
				log.Fatalf("stalled waiting for %s: %d legs", what, shardLegs())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Load: every record costs 3ms of leg time, keys spread across the
	// legs, production far above what two legs can drain.
	delay.Store(int64(3 * time.Millisecond))
	out := pipeline.NewStreamOutBatched(coord.EntryAddr(), record.DefaultBatchConfig())
	defer out.Close()
	if err := out.Consume(record.NewOpenScope(record.ScopeSession, 0)); err != nil {
		log.Fatal(err)
	}
	stop := make(chan struct{})
	sentCh := make(chan int, 1)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				sentCh <- i
				return
			default:
			}
			r := record.NewData(record.SubtypeAudio)
			r.SourceID = uint32(1 + i%13) // the keying contract: hash by source
			r.SetFloat64s([]float64{float64(i)})
			if err := out.Consume(r); err != nil {
				sentCh <- i
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	fmt.Println("phase 2: saturating the 2-shard group (3ms per record per leg)")
	waitLegs(4, "scale-out")
	fmt.Println("phase 2: autoscaler scaled the group out to K=4")

	// Drop the per-record cost: the group shrinks back to the floor, the
	// removed legs flushing their tails through the retire linger.
	delay.Store(0)
	fmt.Println("phase 3: load dropped; waiting for scale-in")
	waitLegs(2, "scale-in")
	fmt.Println("phase 3: autoscaler scaled the group back in to K=2")

	// Stop the stream and audit.
	close(stop)
	sent := <-sentCh
	if err := out.Consume(record.NewCloseScope(record.ScopeSession, 0)); err != nil {
		log.Fatal(err)
	}
	if err := out.Flush(); err != nil {
		log.Fatal(err)
	}
	received := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(seen)
	}
	deadline := time.Now().Add(30 * time.Second)
	for received() < sent {
		if time.Now().After(deadline) {
			log.Fatalf("final drain stalled: %d of %d records arrived", received(), sent)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The autoscale trail from the event stream.
	fmt.Println("\nautoscale event trail:")
	for _, e := range coord.Events().Since(0, nil) {
		switch e.Type {
		case obs.EventAutoscale:
			fmt.Printf("  seq=%-3d autoscale %-10s %s (saturation %.2f)\n", e.Seq, e.Phase, e.Detail, e.Value)
		case obs.EventDrain, obs.EventDrained:
			fmt.Printf("  seq=%-3d %-8s %s (%s)\n", e.Seq, e.Type, e.Unit, e.Detail)
		}
	}

	// Telemetry: the partitioner's spread and the collector's reorder.
	for _, n := range coord.Status().Nodes {
		for _, s := range n.Segments {
			switch s.Role {
			case river.RolePartition:
				fmt.Printf("telemetry: partitioner on %s: legs=%d leg_drops=%d records_out=%d\n",
					n.Name, s.Legs, s.LegDrops, s.RecordsOut)
			case river.RoleCollect:
				fmt.Printf("telemetry: collector on %s: legs=%d dups=%d skipped=%d untagged=%d\n",
					n.Name, s.Legs, s.Dups, s.Skipped, s.Untagged)
			}
		}
	}

	// Teardown and audit.
	out.Close()
	for _, cancel := range agents {
		cancel()
	}
	agentWG.Wait()
	agents = map[string]context.CancelFunc{}
	coord.Close()
	terminal.Close()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	missing, duplicated := 0, 0
	for i := 0; i < sent; i++ {
		switch c := seen[i]; {
		case c == 0:
			missing++
		case c > 1:
			duplicated++
		}
	}
	fmt.Printf("\naudit: %d records sent, %d missing, %d duplicated, %d scope repairs\n",
		sent, missing, duplicated, repairs)
	if missing != 0 || duplicated != 0 || repairs != 0 {
		log.Fatal("elastic resize lost or duplicated records")
	}
	fmt.Println("both resizes were invisible downstream: every record exactly once, zero repairs")
}
