// Replication: demonstrates the zero-loss failover subsystem — a hot
// segment running as three replicas behind a splitter/merger pair. The
// splitter tags every record with a sequence number and fans the stream
// out to all three replica hosts; the merger deduplicates the copies back
// into exactly-once output. When one replica node is killed mid-stream
// the coordinator simply drops the dead leg and splices a re-placed
// replica in: the downstream sink receives every record exactly once —
// no gaps, no duplicates, and (unlike plain recomposition, see
// examples/recomposition) no scope repair at all.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/record"
	"repro/internal/river"
)

func main() {
	// Registry: replicated segments must be record-preserving, so the
	// replicas run the identity relay.
	reg := pipeline.NewRegistry()
	reg.Register("relay", func() []pipeline.Operator { return []pipeline.Operator{pipeline.Relay{}} })

	// Terminal: verifies exactly-once delivery by indexing payloads.
	terminal, err := pipeline.NewStreamIn("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	var mu sync.Mutex
	seen := make(map[int]int)
	repairs := 0
	verify := pipeline.SinkFunc{SinkName: "verify", Fn: func(r *record.Record) error {
		mu.Lock()
		defer mu.Unlock()
		switch r.Kind {
		case record.KindData:
			if v, err := r.Float64s(); err == nil && len(v) == 1 {
				seen[int(v[0])]++
			}
		case record.KindBadCloseScope:
			repairs++
		}
		return nil
	}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = pipeline.New().SetSource(terminal).SetSink(verify).Run(context.Background())
	}()

	// Control plane: one relay segment at 3 replicas, four nodes to host
	// the merger, the replicas (on distinct nodes) and the splitter.
	coord, err := river.NewCoordinator(river.Config{
		Spec: river.PipelineSpec{
			Segments: []river.SegmentSpec{{Name: "relay", Type: "relay", Replicas: 3}},
			SinkAddr: terminal.Addr(),
		},
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
		MinNodes:          4,
		Logf:              log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	type liveAgent struct {
		cancel context.CancelFunc
		done   chan error
	}
	agents := map[string]*liveAgent{}
	for _, name := range []string{"host-a", "host-b", "host-c", "host-d"} {
		agent := river.NewAgent(name, coord.Addr(), reg)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- agent.Run(ctx) }()
		agents[name] = &liveAgent{cancel: cancel, done: done}
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := coord.WaitPlaced(wctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 1: replicated topology placed")
	endpointNodes := map[string]bool{}
	var replicaByNode []string
	for _, p := range coord.Status().Placements {
		fmt.Printf("  %-12s on %s at %s\n", p.Seg, p.Node, p.Addr)
		switch p.Role {
		case river.RoleSplit, river.RoleMerge:
			endpointNodes[p.Node] = true
		case river.RoleReplica:
			replicaByNode = append(replicaByNode, p.Node)
		}
	}

	// Load: a session scope with a steady numbered record stream, batched.
	out := pipeline.NewStreamOutBatched(coord.EntryAddr(), record.DefaultBatchConfig())
	defer out.Close()
	if err := out.Consume(record.NewOpenScope(record.ScopeSession, 0)); err != nil {
		log.Fatal(err)
	}
	stop := make(chan struct{})
	sentCh := make(chan int, 1)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				sentCh <- i
				return
			default:
			}
			r := record.NewData(record.SubtypeAudio)
			r.SetFloat64s([]float64{float64(i)})
			if err := out.Consume(r); err != nil {
				sentCh <- i
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	received := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(seen)
	}
	waitReceived := func(target int, what string) {
		deadline := time.Now().Add(30 * time.Second)
		for received() < target {
			if time.Now().After(deadline) {
				log.Fatalf("stalled waiting for %s: %d of %d records arrived", what, received(), target)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitReceived(1000, "pre-kill load")

	// Phase 2: kill a node hosting only a replica, mid-stream.
	var victim string
	for _, n := range replicaByNode {
		if !endpointNodes[n] {
			victim = n
			break
		}
	}
	fmt.Printf("phase 2: killing replica host %s mid-stream (%d records delivered so far)\n",
		victim, received())
	killedAt := time.Now()
	agents[victim].cancel()
	<-agents[victim].done
	delete(agents, victim)

	// The coordinator drops the dead leg and splices a fresh replica in;
	// wait for three legs again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := coord.Status()
		offVictim := true
		for _, p := range st.Placements {
			if p.Role == river.RoleReplica && (!p.Placed || p.Node == victim) {
				offVictim = false
			}
		}
		legs := 0
		for _, n := range st.Nodes {
			for _, s := range n.Segments {
				if s.Role == river.RoleSplit {
					legs = s.Legs
				}
			}
		}
		if offVictim && legs == 3 {
			fmt.Printf("phase 2: re-converged to 3 replicas %.0fms after the kill\n",
				time.Since(killedAt).Seconds()*1000)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("coordinator did not re-converge to 3 replicas")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 3: keep streaming through the healed group, then stop and
	// audit.
	waitReceived(received()+1000, "post-kill load")
	close(stop)
	sent := <-sentCh
	if err := out.Consume(record.NewCloseScope(record.ScopeSession, 0)); err != nil {
		log.Fatal(err)
	}
	if err := out.Flush(); err != nil {
		log.Fatal(err)
	}
	waitReceived(sent, "the final drain (records lost?)")

	// Telemetry: what the splitter fanned out and the merger deduped.
	for _, n := range coord.Status().Nodes {
		for _, s := range n.Segments {
			switch s.Role {
			case river.RoleSplit:
				fmt.Printf("telemetry: splitter on %s: legs=%d leg_drops=%d records_out=%d\n",
					n.Name, s.Legs, s.LegDrops, s.RecordsOut)
			case river.RoleMerge:
				fmt.Printf("telemetry: merger on %s: legs=%d dups=%d skipped=%d untagged=%d\n",
					n.Name, s.Legs, s.Dups, s.Skipped, s.Untagged)
			}
		}
	}

	// Teardown and audit.
	out.Close()
	for _, a := range agents {
		a.cancel()
		<-a.done
	}
	coord.Close()
	terminal.Close()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	missing, duplicated := 0, 0
	for i := 0; i < sent; i++ {
		switch c := seen[i]; {
		case c == 0:
			missing++
		case c > 1:
			duplicated++
		}
	}
	fmt.Printf("\naudit: %d records sent, %d missing, %d duplicated, %d scope repairs\n",
		sent, missing, duplicated, repairs)
	if missing != 0 || duplicated != 0 || repairs != 0 {
		log.Fatal("zero-loss failover property violated")
	}
	fmt.Println("replica death was invisible downstream: every record exactly once, zero repairs")
}
