// Quickstart: extract ensembles from a synthetic acoustic clip, convert
// them to spectral patterns, train MESO on a small labelled dataset and
// identify the species in the clip — the paper's whole loop in ~60 lines.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/meso"
	"repro/internal/ops"
	"repro/internal/synth"
)

func main() {
	// 1. Build a small labelled training corpus (synthetic vocalizations
	//    for three species, featurized with PAA like the paper's best
	//    data set).
	counts := []core.SpeciesCounts{
		{Code: "NOCA", Patterns: 30, Ensembles: 5},
		{Code: "BCCH", Patterns: 30, Ensembles: 5},
		{Code: "RWBL", Patterns: 30, Ensembles: 5},
	}
	ds, err := core.BuildDataset(core.DatasetConfig{Counts: counts, PAAFactor: 10, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train the MESO perceptual memory.
	classifier := core.NewClassifier(meso.Config{})
	for _, e := range ds.Ensembles {
		if err := classifier.TrainEnsemble(e); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("trained on %d ensembles (%d patterns) -> %d sensitivity spheres\n",
		len(ds.Ensembles), ds.PatternCount(), classifier.MESO().SphereCount())

	// 3. Generate a "field recording": 15 seconds of wind and noise with
	//    two cardinal songs somewhere inside.
	rng := rand.New(rand.NewSource(7))
	clip, err := synth.GenerateClip(rng, synth.ClipConfig{
		Seconds: 15,
		Events:  2,
		Species: []string{"NOCA"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range clip.Events {
		fmt.Printf("ground truth: %s at %.2fs\n", ev.Species, float64(ev.Start)/clip.SampleRate)
	}

	// 4. Analyze: extract ensembles, featurize, classify by pattern vote.
	analyzer := core.NewAnalyzer(ops.DefaultExtractConfig(), 10, classifier)
	detections, ext, err := analyzer.Analyze(ops.Clip{
		ID:         "demo",
		SampleRate: clip.SampleRate,
		Samples:    clip.Samples,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extraction kept %.1f%% of the data (reduction %.1f%%)\n",
		100-ext.Reduction()*100, ext.Reduction()*100)
	for _, d := range detections {
		fmt.Printf("detected %s at %.2fs (%.3fs long, confidence %.0f%%)\n",
			d.Species, d.StartSec, d.DurSec, d.Confidence*100)
	}
}
