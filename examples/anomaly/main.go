// Anomaly: the SAX-bitmap machinery applied to a generic sensor stream
// (not audio). A simulated temperature-like series with daily structure
// develops a fault; the streaming detector flags it in one pass, and the
// same trigger/cutter operators slice the anomalous region out as an
// ensemble — showing the paper's claim that the process generalizes
// beyond acoustics.
//
// This is the offline half of the story. The same detector family
// (timeseries.StreamingZScore / ZScoreSet) also runs online inside the
// coordinator, scoring each node's queue depth, lag growth and
// heartbeat age; the resulting flags surface as "anomaly" events in
// `dynriver events` (node, metric, value, z-score) — see
// examples/observability for that loop end-to-end.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/timeseries"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	const n = 20000
	series := make([]float64, n)
	for i := range series {
		// A steady reading around 20 units with sensor noise.
		series[i] = 20 + rng.NormFloat64()*0.4
	}
	// Fault 1: the sensor starts oscillating at high frequency.
	for i := 8000; i < 9500; i++ {
		series[i] += 1.5 * math.Sin(2*math.Pi*float64(i)/9)
	}
	// Fault 2: the reading sticks at a constant value.
	for i := 14000; i < 15000; i++ {
		series[i] = 20
	}

	det, err := timeseries.NewAnomalyDetector(timeseries.AnomalyConfig{
		Alphabet: 8,
		Window:   200,
		Gram:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	ma, err := timeseries.NewMovingAverage(500)
	if err != nil {
		log.Fatal(err)
	}

	// Stream the series once, tracking the quiet baseline like the
	// trigger operator does.
	quiet, err := timeseries.NewEWStats(1.0 / 4000)
	if err != nil {
		log.Fatal(err)
	}
	var inEvent bool
	var eventStart int
	fmt.Println("streaming 20,000 readings through the SAX-bitmap detector...")
	for i, x := range series {
		raw, ok := det.Push(x)
		if !ok {
			continue
		}
		s := ma.Push(raw)
		if quiet.Count() < 1000 {
			quiet.Add(s)
			continue
		}
		sd := quiet.StdDev()
		if floor := 0.05 * quiet.Mean(); sd < floor {
			sd = floor
		}
		dev := math.Abs(s - quiet.Mean())
		switch {
		case dev > 5*sd && !inEvent:
			inEvent = true
			eventStart = i
		case dev <= 5*sd && inEvent:
			inEvent = false
			fmt.Printf("anomalous ensemble: readings %d..%d (%d samples)\n",
				eventStart, i, i-eventStart)
		case dev < 0.15*quiet.Mean():
			quiet.Add(s)
		}
	}
	if inEvent {
		fmt.Printf("anomalous ensemble still open at end of stream (started %d)\n", eventStart)
	}
	fmt.Println("injected faults: oscillation at 8000..9500, stuck-at at 14000..15000")
}
