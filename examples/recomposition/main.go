// Recomposition: demonstrates Dynamic River's headline systems feature —
// surviving the loss of a host that is processing a stream mid-clip. Where
// the paper (and earlier versions of this example) wired the recovery by
// hand, here the control plane automates it: a coordinator owns the
// topology, two node agents offer to host segments, and when the node
// running the extraction segment is killed the coordinator re-places the
// segment on the survivor and redirects the stream. The terminal stage
// validates every record against the scope rules and reports the
// BadCloseScope repairs that keep the stream meaningful.
//
// The final phase demonstrates the inverse failure: the coordinator
// itself is killed and restarted over its journaled state directory. The
// data plane never notices — the agents keep their segments running
// detached, a full clip streams through while no coordinator exists, and
// the restarted coordinator (one epoch higher) adopts the agents'
// re-registered inventories instead of re-placing anything: zero scope
// repairs, zero moved segments.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/ops"
	"repro/internal/pipeline"
	"repro/internal/record"
	"repro/internal/river"
	"repro/internal/synth"
)

func main() {
	// Registry of segment types any node can instantiate.
	reg := pipeline.NewRegistry()
	reg.Register("extract", func() []pipeline.Operator {
		opsList, _, err := ops.ExtractionOps(ops.DefaultExtractConfig())
		if err != nil {
			panic(err)
		}
		return opsList
	})

	// Terminal stage: validates scope structure of everything it sees.
	terminal, err := pipeline.NewStreamIn("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	tracker := record.NewTracker()
	var mu sync.Mutex
	var ensembles, badCloses int
	validate := pipeline.SinkFunc{SinkName: "validate", Fn: func(r *record.Record) error {
		mu.Lock()
		defer mu.Unlock()
		if err := tracker.Observe(r); err != nil {
			return fmt.Errorf("scope violation: %w", err)
		}
		switch {
		case r.Kind == record.KindCloseScope && r.ScopeType == record.ScopeEnsemble:
			ensembles++
		case r.Kind == record.KindBadCloseScope:
			badCloses++
			fmt.Printf("terminal: repaired %s scope after upstream loss\n", r.ScopeType)
		}
		return nil
	}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := pipeline.New().SetSource(terminal).SetSink(validate)
		if err := p.Run(context.Background()); err != nil {
			log.Println("terminal:", err)
		}
	}()

	// Control plane: the coordinator owns the topology station -> extract
	// -> terminal; the entry channel tells the station where to stream.
	// The state directory makes it durable — phase 4 kills and restarts
	// it over the same journal.
	stateDir, err := os.MkdirTemp("", "dynriver-state-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)
	entryCh := make(chan string, 8)
	coordConfig := func(listen string) river.Config {
		return river.Config{
			ListenAddr: listen,
			Spec: river.PipelineSpec{
				Segments: []river.SegmentSpec{{Name: "extract", Type: "extract"}},
				SinkAddr: terminal.Addr(),
			},
			HeartbeatInterval: 100 * time.Millisecond,
			HeartbeatTimeout:  500 * time.Millisecond,
			OnEntryChange:     func(a string) { entryCh <- a },
			StateDir:          stateDir,
			RestartGrace:      3 * time.Second,
			Logf:              log.Printf,
		}
	}
	coord, err := river.NewCoordinator(coordConfig("127.0.0.1:0"))
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = coord.Close() }()
	coordAddr := coord.Addr()

	// Two node agents register; the coordinator places the segment on one.
	type liveAgent struct {
		cancel context.CancelFunc
		done   chan error
	}
	agents := map[string]*liveAgent{}
	for _, name := range []string{"host-a", "host-b"} {
		agent := river.NewAgent(name, coordAddr, reg)
		agent.ReconnectMin = 50 * time.Millisecond
		agent.ReconnectMax = 500 * time.Millisecond
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- agent.Run(ctx) }()
		agents[name] = &liveAgent{cancel: cancel, done: done}
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := coord.WaitPlaced(wctx); err != nil {
		log.Fatal(err)
	}
	placed := coord.Status().Placements[0]
	fmt.Printf("phase 1: coordinator placed segment %q on %s at %s\n", placed.Seg, placed.Node, placed.Addr)

	// Station: a batch-framed streamout that follows the coordinator's
	// entry address. Batching coalesces the clip's records into one
	// network write per batch; the forced flush on redirect bounds what a
	// failover can cut off to a single batch.
	upstream := pipeline.NewStreamOutBatched(<-entryCh, record.DefaultBatchConfig())
	defer upstream.Close()
	followerCtx, stopFollower := context.WithCancel(context.Background())
	defer stopFollower()
	go func() {
		for {
			select {
			case a := <-entryCh:
				upstream.Redirect(a)
			case <-followerCtx.Done():
				return
			}
		}
	}()

	station := synth.NewStation("kbs-01", 11, synth.ClipConfig{Seconds: 8, Events: 2})
	sendClip := func() {
		clip, id, err := station.NextClip()
		if err != nil {
			log.Fatal(err)
		}
		c := ops.Clip{ID: id, Station: station.Name, SampleRate: clip.SampleRate, Samples: clip.Samples}
		feed := pipeline.EmitterFunc(func(r *record.Record) error { return upstream.Consume(r) })
		if err := ops.EmitClip(feed, &c); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("station: sent clip %s\n", id)
	}
	sendClip()
	time.Sleep(300 * time.Millisecond)

	// Phase 2: kill the hosting node mid-clip — stream part of a clip so
	// scopes are open end to end, then stop the node abruptly. The
	// coordinator detects the death, re-places the segment on the
	// survivor and redirects the station's stream; the terminal repairs
	// the dangling scopes.
	open := record.NewOpenScope(record.ScopeClip, 0)
	open.SetContext(map[string]string{
		record.CtxSampleRate: "24576",
		record.CtxClipID:     "doomed",
	})
	if err := upstream.Consume(open); err != nil {
		log.Fatal(err)
	}
	data := record.NewData(record.SubtypeAudio)
	data.SetFloat64s(make([]float64, ops.RecordSamples))
	if err := upstream.Consume(data); err != nil {
		log.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)

	victim := coord.Status().Placements[0].Node
	fmt.Printf("phase 2: killing %s mid-clip\n", victim)
	killedAt := time.Now()
	agents[victim].cancel()
	<-agents[victim].done
	delete(agents, victim)

	// Wait for the coordinator to heal the pipeline.
	deadline := time.Now().Add(10 * time.Second)
	for {
		p := coord.Status().Placements[0]
		if p.Placed && p.Node != victim {
			fmt.Printf("phase 2: coordinator re-placed segment on %s at %s (%.0fms after kill)\n",
				p.Node, p.Addr, time.Since(killedAt).Seconds()*1000)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("coordinator did not re-place the segment")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 3: finish the doomed clip (the new instance discards its
	// stray tail) and stream one more full clip through the healed
	// pipeline.
	if err := upstream.Consume(record.NewCloseScope(record.ScopeClip, 0)); err != nil {
		log.Fatal(err)
	}
	sendClip()
	time.Sleep(500 * time.Millisecond)

	// Phase 4: kill the coordinator itself and restart it over the same
	// state directory. The surviving agent keeps its segment running
	// detached — a full clip streams through while no coordinator exists
	// — and the restarted coordinator adopts the agent's re-registered
	// inventory: same node, same address, zero repairs, zero moves.
	placedBefore := coord.Status().Placements[0]
	mu.Lock()
	repairsBefore := badCloses
	mu.Unlock()
	fmt.Printf("phase 4: killing the coordinator (segment %q stays on %s at %s)\n",
		placedBefore.Seg, placedBefore.Node, placedBefore.Addr)
	if err := coord.Close(); err != nil {
		log.Fatal(err)
	}
	sendClip() // the data plane flows with no coordinator at all
	time.Sleep(300 * time.Millisecond)

	coord2, err := river.NewCoordinator(coordConfig(coordAddr))
	if err != nil {
		log.Fatal(err)
	}
	defer coord2.Close()
	adoptDeadline := time.Now().Add(10 * time.Second)
	for {
		st := coord2.Status()
		if len(st.Nodes) == 1 && st.Placements[0].Placed {
			break
		}
		if time.Now().After(adoptDeadline) {
			log.Fatal("restarted coordinator did not adopt the surviving agent")
		}
		time.Sleep(20 * time.Millisecond)
	}
	placedAfter := coord2.Status().Placements[0]
	if placedAfter.Node != placedBefore.Node || placedAfter.Addr != placedBefore.Addr {
		log.Fatalf("segment moved across the restart: %s@%s -> %s@%s (re-placed, not adopted)",
			placedBefore.Node, placedBefore.Addr, placedAfter.Node, placedAfter.Addr)
	}
	mu.Lock()
	repairsDuringRestart := badCloses - repairsBefore
	mu.Unlock()
	if repairsDuringRestart != 0 {
		log.Fatalf("%d scope repairs during the coordinator bounce; the data plane must not notice", repairsDuringRestart)
	}
	fmt.Printf("phase 4: coordinator restarted as epoch %d and adopted %s on %s — no repairs, no moves\n",
		coord2.Epoch(), placedAfter.Seg, placedAfter.Node)
	sendClip()
	time.Sleep(500 * time.Millisecond)

	// The survivor's heartbeats carry the flow-control telemetry the
	// load-aware placer feeds on; show what the healed segment reported.
	for _, n := range coord2.Status().Nodes {
		for _, s := range n.Segments {
			fmt.Printf("telemetry: %s on %s processed=%d emitted=%d lag=%d queue=%d/%d out: records=%d batches=%d bytes=%d\n",
				s.Name, n.Name, s.Processed, s.Emitted, s.LagValue(), s.QueueDepth, s.QueueCap,
				s.RecordsOut, s.BatchesOut, s.BytesOut)
		}
	}
	fmt.Printf("station transport: %d records in %d batches (%d bytes)\n",
		upstream.RecordsOut(), upstream.BatchesOut(), upstream.BytesOut())

	// Teardown: stop the station, the surviving node, the coordinator and
	// the terminal, then report.
	upstream.Close()
	stopFollower()
	for _, a := range agents {
		a.cancel()
		<-a.done
	}
	coord2.Close()
	terminal.Close()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("\nterminal survived: %d ensembles delivered, %d scope repairs, 0 scope violations\n",
		ensembles, badCloses)
	if tracker.Depth() != 0 {
		log.Fatalf("stream ended with %d scopes open", tracker.Depth())
	}
	if badCloses == 0 {
		log.Fatal("expected at least one scope repair from the killed node")
	}
	if ensembles == 0 {
		log.Fatal("expected complete ensembles through the recomposed pipeline")
	}
}
