// Recomposition: demonstrates Dynamic River's headline systems feature —
// moving a pipeline segment between hosts mid-stream, and recovering from
// an upstream host being killed while scopes are open. The terminal stage
// validates every record against the scope rules and reports the
// BadCloseScope repairs that keep the stream meaningful.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/ops"
	"repro/internal/pipeline"
	"repro/internal/record"
	"repro/internal/synth"
)

func main() {
	// Registry of segment types any node can instantiate.
	reg := pipeline.NewRegistry()
	reg.Register("extract", func() []pipeline.Operator {
		opsList, _, err := ops.ExtractionOps(ops.DefaultExtractConfig())
		if err != nil {
			panic(err)
		}
		return opsList
	})

	// Terminal stage: validates scope structure of everything it sees.
	terminal, err := pipeline.NewStreamIn("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	terminal.MaxConns = 2 // one connection from host A, one from host B
	terminal.IdleTimeout = 10 * time.Second
	tracker := record.NewTracker()
	var ensembles, badCloses int
	validate := pipeline.SinkFunc{SinkName: "validate", Fn: func(r *record.Record) error {
		if err := tracker.Observe(r); err != nil {
			return fmt.Errorf("scope violation: %w", err)
		}
		switch {
		case r.Kind == record.KindCloseScope && r.ScopeType == record.ScopeEnsemble:
			ensembles++
		case r.Kind == record.KindBadCloseScope:
			badCloses++
			fmt.Printf("terminal: repaired %s scope after upstream loss\n", r.ScopeType)
		}
		return nil
	}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := pipeline.New().SetSource(terminal).SetSink(validate)
		if err := p.Run(context.Background()); err != nil {
			log.Println("terminal:", err)
		}
	}()

	nodeA := pipeline.NewNode("host-a", reg)
	nodeB := pipeline.NewNode("host-b", reg)

	// Phase 1: the extraction segment runs on host A.
	addrA, err := nodeA.Host("extract", "extract", "127.0.0.1:0", terminal.Addr())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 1: extraction segment on host-a at", addrA)
	upstream := pipeline.NewStreamOut(addrA)
	defer upstream.Close()

	station := synth.NewStation("kbs-01", 11, synth.ClipConfig{Seconds: 8, Events: 2})
	sendClip := func() {
		clip, id, err := station.NextClip()
		if err != nil {
			log.Fatal(err)
		}
		c := ops.Clip{ID: id, Station: station.Name, SampleRate: clip.SampleRate, Samples: clip.Samples}
		feed := pipeline.EmitterFunc(func(r *record.Record) error { return upstream.Consume(r) })
		if err := ops.EmitClip(feed, &c); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("station: sent clip %s\n", id)
	}
	sendClip()
	time.Sleep(200 * time.Millisecond)

	// Phase 2: move the segment to host B while the pipeline is live.
	coord := pipeline.NewCoordinator(reg)
	addrB, err := coord.Move("extract", "extract", nodeA, nodeB, upstream, terminal.Addr())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 2: segment moved to host-b at", addrB)
	sendClip()
	time.Sleep(200 * time.Millisecond)

	// Phase 3: kill host B mid-clip — leave a clip scope open, then stop
	// the node. The terminal repairs the dangling scopes.
	open := record.NewOpenScope(record.ScopeClip, 0)
	open.SetContext(map[string]string{record.CtxSampleRate: "24576", record.CtxClipID: "doomed"})
	if err := upstream.Consume(open); err != nil {
		log.Fatal(err)
	}
	data := record.NewData(record.SubtypeAudio)
	data.SetFloat64s(make([]float64, ops.RecordSamples))
	if err := upstream.Consume(data); err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	fmt.Println("phase 3: killing host-b mid-clip")
	if err := nodeB.StopAll(); err != nil {
		log.Println("host-b:", err)
	}
	upstream.Close()
	wg.Wait()

	fmt.Printf("\nterminal survived: %d ensembles delivered, %d scope repairs, 0 scope violations\n",
		ensembles, badCloses)
	if tracker.Depth() != 0 {
		log.Fatalf("stream ended with %d scopes open", tracker.Depth())
	}
}
