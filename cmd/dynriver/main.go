// Command dynriver runs Dynamic River pipeline stages as networked
// processes, demonstrating the paper's distributed deployment: a sensor
// station source, relocatable processing segments, and a collecting sink
// connect over TCP using streamin/streamout.
//
// A three-process pipeline on one machine:
//
//	dynriver sink -listen :7103
//	dynriver segment -type extract -listen :7102 -to 127.0.0.1:7103
//	dynriver station -to 127.0.0.1:7102 -clips 2
//
// The sink prints the ensembles it receives. Killing the segment process
// mid-clip and restarting it demonstrates scope repair: the sink reports
// BadCloseScope-discarded ensembles instead of corrupt ones.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"repro/internal/ops"
	"repro/internal/pipeline"
	"repro/internal/record"
	"repro/internal/synth"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "station":
		err = runStation(os.Args[2:])
	case "segment":
		err = runSegment(os.Args[2:])
	case "sink":
		err = runSink(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynriver:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dynriver station -to HOST:PORT [-clips N] [-seed S] [-seconds SEC]
  dynriver segment -type extract|spectral|full -listen ADDR -to HOST:PORT
  dynriver sink -listen ADDR [-conns N]`)
}

func runStation(args []string) error {
	fs := flag.NewFlagSet("station", flag.ExitOnError)
	to := fs.String("to", "", "downstream address (required)")
	clips := fs.Int("clips", 2, "clips to transmit")
	seed := fs.Int64("seed", 1, "clip generator seed")
	seconds := fs.Float64("seconds", 10, "seconds per clip")
	name := fs.String("name", "kbs-01", "station name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" {
		return fmt.Errorf("station: -to is required")
	}
	station := synth.NewStation(*name, *seed, synth.ClipConfig{Seconds: *seconds})
	out := pipeline.NewStreamOut(*to)
	defer out.Close()
	p := pipeline.New().
		SetSource(&ops.StationSource{Station: station, ClipCount: *clips}).
		SetSink(out)
	fmt.Printf("station %s: sending %d clip(s) of %.0fs to %s\n", *name, *clips, *seconds, *to)
	return p.Run(interruptContext())
}

func runSegment(args []string) error {
	fs := flag.NewFlagSet("segment", flag.ExitOnError)
	typ := fs.String("type", "extract", "segment type: extract, spectral or full")
	listen := fs.String("listen", ":0", "listen address for upstream records")
	to := fs.String("to", "", "downstream address (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" {
		return fmt.Errorf("segment: -to is required")
	}
	reg := pipeline.NewRegistry()
	reg.Register("extract", func() []pipeline.Operator {
		opsList, _, err := ops.ExtractionOps(ops.DefaultExtractConfig())
		if err != nil {
			panic(err)
		}
		return opsList
	})
	reg.Register("spectral", func() []pipeline.Operator { return ops.SpectralOps(10) })
	reg.Register("full", func() []pipeline.Operator {
		opsList, _, err := ops.ExtractionOps(ops.DefaultExtractConfig())
		if err != nil {
			panic(err)
		}
		return append(opsList, ops.SpectralOps(10)...)
	})
	node := pipeline.NewNode("cli", reg)
	addr, err := node.Host("seg", *typ, *listen, *to)
	if err != nil {
		return err
	}
	fmt.Printf("segment %q listening on %s, forwarding to %s\n", *typ, addr, *to)
	<-interruptContext().Done()
	return node.StopAll()
}

func runSink(args []string) error {
	fs := flag.NewFlagSet("sink", flag.ExitOnError)
	listen := fs.String("listen", ":0", "listen address")
	conns := fs.Int("conns", 0, "stop after N upstream connections (0 = run until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in, err := pipeline.NewStreamIn(*listen)
	if err != nil {
		return err
	}
	in.MaxConns = *conns
	fmt.Printf("sink listening on %s\n", in.Addr())
	go func() {
		<-interruptContext().Done()
		in.Close()
	}()
	col := ops.NewEnsembleCollector()
	report := pipeline.SinkFunc{SinkName: "report", Fn: func(r *record.Record) error {
		switch {
		case r.Kind == record.KindOpenScope && r.ScopeType == record.ScopeClip:
			fmt.Printf("clip %s from station %s\n",
				r.ContextValue(record.CtxClipID), r.ContextValue(record.CtxStation))
		case r.Kind == record.KindBadCloseScope:
			fmt.Printf("  !! scope %s repaired (upstream failure)\n", r.ScopeType)
		}
		return col.Consume(r)
	}}
	p := pipeline.New().SetSource(in).SetSink(report)
	if err := p.Run(interruptContext()); err != nil {
		return err
	}
	for i, e := range col.Ensembles() {
		fmt.Printf("ensemble %d: %.2fs, %.3fs long, %d patterns\n",
			i, e.StartSec, float64(len(e.Samples))/e.SampleRate, len(e.Patterns))
	}
	fmt.Printf("total ensembles: %d (discarded mid-failure: %d)\n", len(col.Ensembles()), col.Discarded())
	return nil
}

var (
	interruptOnce sync.Once
	interruptCtx  context.Context
)

// interruptContext returns a process-wide context cancelled by
// SIGINT/SIGTERM.
func interruptContext() context.Context {
	interruptOnce.Do(func() {
		ctx, cancel := context.WithCancel(context.Background())
		interruptCtx = ctx
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-ch
			cancel()
		}()
	})
	return interruptCtx
}
