// Command dynriver runs Dynamic River pipeline stages as networked
// processes, demonstrating the paper's distributed deployment: a sensor
// station source, relocatable processing segments, and a collecting sink
// connect over TCP using streamin/streamout.
//
// A three-process pipeline on one machine, wired by hand:
//
//	dynriver sink -listen :7103
//	dynriver segment -type extract -listen :7102 -to 127.0.0.1:7103
//	dynriver station -to 127.0.0.1:7102 -clips 2
//
// The sink prints the ensembles it receives. Killing the segment process
// mid-clip and restarting it demonstrates scope repair: the sink reports
// BadCloseScope-discarded ensembles instead of corrupt ones.
//
// The coordinator subcommands automate the wiring and the recovery. The
// coordinator owns the topology; nodes register and are assigned segments;
// the station follows the pipeline entry address through failovers:
//
//	dynriver sink -listen :7103
//	dynriver coord -listen :7100 -sink 127.0.0.1:7103 -segments extract
//	dynriver node -name host-a -coord 127.0.0.1:7100
//	dynriver node -name host-b -coord 127.0.0.1:7100
//	dynriver station -coord 127.0.0.1:7100 -clips 4
//	dynriver status -coord 127.0.0.1:7100
//
// Killing one node process mid-clip makes the coordinator re-place its
// segments on the survivor and redirect the stream; the sink reports the
// scope repairs instead of corrupt ensembles.
//
// With -state the coordinator is durable: killing and restarting the
// coordinator process over the same directory leaves the data plane
// untouched — node agents keep their segments running, reconnect with
// backoff, and are adopted by the restarted coordinator (now one epoch
// higher) instead of being re-placed:
//
//	dynriver coord -listen :7100 -sink 127.0.0.1:7103 -segments extract -state /var/lib/dynriver
//
// One coordinator scales to many stations' pipelines over the same node
// pool (-pipelines N, or a -spec-file JSON fleet); each station follows
// its own pipeline's entry address, and pipelines can be added and
// removed at runtime without restarting anything:
//
//	dynriver coord -listen :7100 -sink 127.0.0.1:7103 -segments relay -pipelines 8
//	dynriver station -coord 127.0.0.1:7100 -pipeline p3 -clips 4
//	dynriver pipeline add -coord 127.0.0.1:7100 -id p9 -segments relay -sink 127.0.0.1:7104
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/pipeline"
	"repro/internal/record"
	"repro/internal/river"
	"repro/internal/synth"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "station":
		err = runStation(os.Args[2:])
	case "segment":
		err = runSegment(os.Args[2:])
	case "sink":
		err = runSink(os.Args[2:])
	case "coord":
		err = runCoord(os.Args[2:])
	case "node":
		err = runNode(os.Args[2:])
	case "status":
		err = runStatus(os.Args[2:])
	case "events":
		err = runEvents(os.Args[2:])
	case "drain":
		err = runDrain(os.Args[2:])
	case "pipeline":
		err = runPipeline(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynriver:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dynriver station (-to HOST:PORT | -coord HOST:PORT [-pipeline ID]) [-clips N] [-seed S] [-seconds SEC] [-batch N] [-frame v1|v2] [-pace D] [-probes D]
  dynriver segment -type extract|spectral|detect|slow|full -listen ADDR -to HOST:PORT
  dynriver sink -listen ADDR [-conns N]
  dynriver coord -listen ADDR -sink HOST:PORT [-segments TYPES] [-pipelines N | -spec-file FILE]
                 [-replicas N] [-heartbeat D] [-timeout D] [-placer POLICY]
                 [-state DIR] [-grace D] [-disconnect-grace D] [-fsync=BOOL]
                 [-metrics-addr ADDR] [-monitor=BOOL]
                 [-react observe|drain] [-dry-run] [-remediate-cooldown D] [-remediate-max N]
                 [-autoscale] [-autoscale-low F] [-autoscale-high F] [-autoscale-min K]
                 [-autoscale-max K] [-autoscale-step N] [-autoscale-cooldown D]
  dynriver node -name NAME -coord HOST:PORT [-host IP] [-batch N] [-frame v1|v2] [-queue N] [-retry N] [-retry-max D]
                [-metrics-addr ADDR]
  dynriver status -coord HOST:PORT [-json] [-pipeline ID]
  dynriver events -coord HOST:PORT [-pipeline ID] [-follow] [-json] [-since SEQ]
  dynriver drain -coord HOST:PORT -seg UNIT [-pipeline ID]
  dynriver pipeline add -coord HOST:PORT -id ID -sink HOST:PORT [-segments TYPES] [-replicas N]
  dynriver pipeline rm -coord HOST:PORT -id ID

placer policies: least-loaded (default), spread, load-aware
segments syntax: TYPE, NAME=TYPE, with an optional :N replica suffix
(e.g. "relay:3,extract") or :sK shard suffix ("spectral:s4" runs the
segment as K=4 keyed shards behind a partition/collect pair; -autoscale
lets the coordinator move K with load); -replicas N applies to entries
without one
-pipelines N runs N copies of the -segments chain as pipelines p1..pN
(each needs its own station; all share the node pool); -spec-file names
a JSON file holding an array of pipeline specs ({"id","segments":[{"name",
"type","replicas"}],"sink_addr"}) for heterogeneous fleets
-metrics-addr serves Prometheus /metrics and /debug/pprof on ADDR
-react=drain auto-drains nodes the monitor flags anomalous (-dry-run to
audit decisions first); station -probes injects latency trace probes;
segment type "slow" delays records while $DYNRIVER_SLOW_FILE exists
($DYNRIVER_SLOW_MS per record, default 25), "detect" raises change alerts`)
}

// builtinRegistry exposes the acoustic pipeline's segment types to both
// the manual segment subcommand and coordinator-driven nodes.
func builtinRegistry() *pipeline.Registry {
	reg := pipeline.NewRegistry()
	reg.Register("extract", func() []pipeline.Operator {
		opsList, _, err := ops.ExtractionOps(ops.DefaultExtractConfig())
		if err != nil {
			panic(err)
		}
		return opsList
	})
	reg.Register("spectral", func() []pipeline.Operator { return ops.SpectralOps(10) })
	reg.Register("relay", func() []pipeline.Operator { return []pipeline.Operator{pipeline.Relay{}} })
	reg.Register("detect", func() []pipeline.Operator {
		det, err := ops.NewChangeDetect(ops.ChangeDetectConfig{})
		if err != nil {
			panic(err)
		}
		return []pipeline.Operator{det}
	})
	// "slow" is a relay whose per-record delay switches on while the file
	// named by DYNRIVER_SLOW_FILE exists — a degradation lever for smoke
	// tests and demos: touch the file to make whichever node hosts the
	// segment anomalous, remove it to recover.
	reg.Register("slow", func() []pipeline.Operator {
		delay := 25 * time.Millisecond
		if ms, err := strconv.Atoi(os.Getenv("DYNRIVER_SLOW_MS")); err == nil && ms > 0 {
			delay = time.Duration(ms) * time.Millisecond
		}
		return []pipeline.Operator{&slowRelay{file: os.Getenv("DYNRIVER_SLOW_FILE"), delay: delay}}
	})
	reg.Register("full", func() []pipeline.Operator {
		opsList, _, err := ops.ExtractionOps(ops.DefaultExtractConfig())
		if err != nil {
			panic(err)
		}
		return append(opsList, ops.SpectralOps(10)...)
	})
	return reg
}

// slowRelay passes records through, sleeping per record while its gate
// file exists. The existence check is cached for 100ms so the hot path
// stats the filesystem ten times a second, not per record.
type slowRelay struct {
	file  string
	delay time.Duration

	mu        sync.Mutex
	lastCheck time.Time
	active    bool
}

func (s *slowRelay) Name() string { return "slow" }

func (s *slowRelay) Process(r *record.Record, out pipeline.Emitter) error {
	if s.file != "" {
		s.mu.Lock()
		if time.Since(s.lastCheck) > 100*time.Millisecond {
			_, err := os.Stat(s.file)
			s.active, s.lastCheck = err == nil, time.Now()
		}
		active := s.active
		s.mu.Unlock()
		if active {
			time.Sleep(s.delay)
		}
	}
	return out.Emit(r)
}

// flushPolicy maps the -batch and -frame flag values to a record framing
// policy: batch <=1 selects per-record writes, anything larger the
// batched hot path with that record bound; frame "v1" pins the per-record
// wire framing (the escape hatch — readers accept either, so mixed fleets
// interoperate), anything else keeps the v2 batch-frame default.
func flushPolicy(batch int, frame string) (record.BatchConfig, error) {
	var cfg record.BatchConfig
	if batch <= 1 {
		cfg = record.PerRecordConfig()
	} else {
		cfg = record.DefaultBatchConfig()
		cfg.MaxRecords = batch
		if cfg.AdaptMax < batch {
			cfg.AdaptMax = batch
		}
	}
	switch frame {
	case "", "v2":
	case "v1":
		cfg.Frame = record.FrameV1
	default:
		return cfg, fmt.Errorf("unknown -frame %q (want v1 or v2)", frame)
	}
	return cfg, nil
}

func runStation(args []string) error {
	fs := flag.NewFlagSet("station", flag.ExitOnError)
	to := fs.String("to", "", "downstream address (exclusive with -coord)")
	coordAddr := fs.String("coord", "", "coordinator address to resolve and follow the pipeline entry")
	pipeID := fs.String("pipeline", "", "pipeline ID to follow on a multi-pipeline coordinator (default: the default pipeline)")
	clips := fs.Int("clips", 2, "clips to transmit")
	seed := fs.Int64("seed", 1, "clip generator seed")
	seconds := fs.Float64("seconds", 10, "seconds per clip")
	name := fs.String("name", "kbs-01", "station name")
	batch := fs.Int("batch", 64, "records per streamout batch (<=1 writes per record)")
	frame := fs.String("frame", "v2", "wire framing: v2 (batch frames, hardware CRC) or v1 (per-record frames)")
	pace := fs.Duration("pace", 0, "sleep between records, approximating a live sensor (0 = stream flat-out)")
	probes := fs.Duration("probes", 0, "interval between end-to-end latency trace probes (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*to == "") == (*coordAddr == "") {
		return fmt.Errorf("station: exactly one of -to or -coord is required")
	}
	policy, err := flushPolicy(*batch, *frame)
	if err != nil {
		return fmt.Errorf("station: %w", err)
	}
	ctx := interruptContext()

	var out *pipeline.StreamOut
	if *coordAddr != "" {
		// Follow the pipeline entry address published by the coordinator:
		// the first update tells us where to dial, later ones re-route the
		// stream when the control plane moves the first segment. The watch
		// session itself reconnects with backoff so a coordinator restart
		// or network blip cannot strand the station on a stale address.
		type entryUpdate struct {
			addr     string
			boundary bool
		}
		entryCh := make(chan entryUpdate, 8)
		wctx, wcancel := context.WithCancel(ctx)
		defer wcancel()
		go func() {
			for {
				err := river.WatchPipelineEntry(wctx, *coordAddr, *pipeID, func(a string, boundary bool) {
					select {
					case entryCh <- entryUpdate{a, boundary}:
					default:
					}
				})
				if wctx.Err() != nil {
					return
				}
				fmt.Printf("station: entry watch lost (%v); reconnecting\n", err)
				select {
				case <-time.After(time.Second):
				case <-wctx.Done():
					return
				}
			}
		}()
		var entry string
		select {
		case up := <-entryCh:
			entry = up.addr
		case <-time.After(30 * time.Second):
			return fmt.Errorf("station: no entry for pipeline %q from coordinator %s after 30s", *pipeID, *coordAddr)
		case <-ctx.Done():
			return nil
		}
		out = pipeline.NewStreamOutBatched(entry, policy)
		go func() {
			for {
				select {
				case up := <-entryCh:
					if up.boundary {
						// A planned drain of the entry segment: switch at
						// the next clip boundary so the old instance's
						// stream ends cleanly. Run it off the watch loop —
						// it blocks until the boundary (or 5s), and a
						// failover update arriving meanwhile must not wait
						// behind it (an immediate Redirect safely
						// supersedes a pending boundary target).
						go out.RedirectAtBoundary(up.addr, 5*time.Second)
					} else {
						out.Redirect(up.addr)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
		fmt.Printf("station: pipeline entry resolved to %s via coordinator %s\n", entry, *coordAddr)
	} else {
		out = pipeline.NewStreamOutBatched(*to, policy)
	}
	defer out.Close()

	station := synth.NewStation(*name, *seed, synth.ClipConfig{Seconds: *seconds})
	var src pipeline.Source = &ops.StationSource{Station: station, ClipCount: *clips, Pace: *pace}
	if *probes > 0 {
		// Interleave timestamped trace probes with the clip stream; every
		// tracing sink the probes pass reports origin-to-sink latency.
		src = &pipeline.ProbeSource{Source: src, Interval: *probes}
	}
	p := pipeline.New().SetSource(src).SetSink(out)
	fmt.Printf("station %s: sending %d clip(s) of %.0fs\n", *name, *clips, *seconds)
	return p.Run(ctx)
}

func runSegment(args []string) error {
	fs := flag.NewFlagSet("segment", flag.ExitOnError)
	typ := fs.String("type", "extract", "segment type: extract, spectral or full")
	listen := fs.String("listen", ":0", "listen address for upstream records")
	to := fs.String("to", "", "downstream address (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" {
		return fmt.Errorf("segment: -to is required")
	}
	node := pipeline.NewNode("cli", builtinRegistry())
	addr, err := node.Host("seg", *typ, *listen, *to)
	if err != nil {
		return err
	}
	fmt.Printf("segment %q listening on %s, forwarding to %s\n", *typ, addr, *to)
	<-interruptContext().Done()
	return node.StopAll()
}

func runSink(args []string) error {
	fs := flag.NewFlagSet("sink", flag.ExitOnError)
	listen := fs.String("listen", ":0", "listen address")
	conns := fs.Int("conns", 0, "stop after N upstream connections (0 = run until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in, err := pipeline.NewStreamIn(*listen)
	if err != nil {
		return err
	}
	in.MaxConns = *conns
	fmt.Printf("sink listening on %s\n", in.Addr())
	go func() {
		<-interruptContext().Done()
		in.Close()
	}()
	col := ops.NewEnsembleCollector()
	report := pipeline.SinkFunc{SinkName: "report", Fn: func(r *record.Record) error {
		switch {
		case r.Kind == record.KindOpenScope && r.ScopeType == record.ScopeClip:
			fmt.Printf("clip %s from station %s\n",
				r.ContextValue(record.CtxClipID), r.ContextValue(record.CtxStation))
		case r.Kind == record.KindBadCloseScope:
			fmt.Printf("  !! scope %s repaired (upstream failure)\n", r.ScopeType)
		}
		return col.Consume(r)
	}}
	p := pipeline.New().SetSource(in).SetSink(report)
	if err := p.Run(interruptContext()); err != nil {
		return err
	}
	for i, e := range col.Ensembles() {
		fmt.Printf("ensemble %d: %.2fs, %.3fs long, %d patterns\n",
			i, e.StartSec, float64(len(e.Samples))/e.SampleRate, len(e.Patterns))
	}
	fmt.Printf("total ensembles: %d (discarded mid-failure: %d)\n", len(col.Ensembles()), col.Discarded())
	return nil
}

// parseSegments parses the -segments syntax (comma-separated TYPE or
// NAME=TYPE entries with an optional :N replica or :sK shard suffix)
// into segment specs; defReplicas applies to entries without a suffix.
func parseSegments(segments string, defReplicas int) ([]river.SegmentSpec, error) {
	var out []river.SegmentSpec
	for i, part := range strings.Split(segments, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, shards := defReplicas, 0
		if colon := strings.LastIndexByte(part, ':'); colon >= 0 {
			suffix := part[colon+1:]
			if strings.HasPrefix(suffix, "s") {
				parsed, err := strconv.Atoi(suffix[1:])
				if err != nil || parsed < 1 {
					return nil, fmt.Errorf("bad shard suffix in %q", part)
				}
				shards, n, part = parsed, 1, part[:colon]
			} else {
				parsed, err := strconv.Atoi(suffix)
				if err != nil || parsed < 1 {
					return nil, fmt.Errorf("bad replica suffix in %q", part)
				}
				n, part = parsed, part[:colon]
			}
		}
		name, typ := fmt.Sprintf("s%d-%s", i+1, part), part
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			name, typ = part[:eq], part[eq+1:]
		}
		out = append(out, river.SegmentSpec{Name: name, Type: typ, Replicas: n, Shards: shards})
	}
	return out, nil
}

// parsePlacer maps a -placer flag value to a placement policy.
func parsePlacer(name string) (river.Placer, error) {
	switch name {
	case "least-loaded":
		return river.LeastLoaded{}, nil
	case "spread":
		return river.Spread{}, nil
	case "load-aware":
		return river.LoadAware{}, nil
	}
	return nil, fmt.Errorf("unknown placer %q (want least-loaded, spread or load-aware)", name)
}

// runCoord starts the control-plane coordinator. One coordinator can
// maintain many pipelines over a shared node pool: -pipelines N clones
// the -segments chain into pipelines p1..pN (all forwarding to -sink),
// and -spec-file loads an arbitrary heterogeneous set from JSON. More
// pipelines can be added and removed at runtime with `dynriver pipeline`.
func runCoord(args []string) error {
	fs := flag.NewFlagSet("coord", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7100", "control listen address")
	sinkAddr := fs.String("sink", "", "terminal sink address (required unless -spec-file)")
	segments := fs.String("segments", "extract", "comma-separated segment types (or name=type pairs), upstream first")
	pipelines := fs.Int("pipelines", 1, "number of pipelines to run: 1 = the single default pipeline, N>1 = pipelines p1..pN each running the -segments chain")
	specFile := fs.String("spec-file", "", "JSON file holding an array of pipeline specs (overrides -segments/-pipelines/-sink)")
	heartbeat := fs.Duration("heartbeat", 250*time.Millisecond, "heartbeat interval told to nodes")
	timeout := fs.Duration("timeout", 0, "heartbeat silence before a node is declared dead (default 4x heartbeat)")
	minNodes := fs.Int("min-nodes", 1, "nodes required before the initial placement")
	replicas := fs.Int("replicas", 1, "default replica count for segments without a :N suffix (>1 runs a splitter/merger pair)")
	placerName := fs.String("placer", "least-loaded", "placement policy: least-loaded, spread or load-aware")
	stateDir := fs.String("state", "", "journal placement state to this directory; a coordinator restarted over it adopts the running data plane instead of re-placing")
	grace := fs.Duration("grace", 0, "restart grace window for agents to re-register and be adopted (default 5s; needs -state)")
	disconnectGrace := fs.Duration("disconnect-grace", 0, "hold a disconnected node's units this long for reconnect-and-adopt before re-placing (0 = fail over immediately)")
	fsync := fs.Bool("fsync", true, "group-commit fsync of journal entries (disable to trade a machine-crash durability window for zero fsync traffic)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (empty = off)")
	monitor := fs.Bool("monitor", true, "run the self-monitoring anomaly detectors over node telemetry")
	react := fs.String("react", "observe", "what an anomaly triggers: observe (record only) or drain (pre-emptively drain the flagged node)")
	remCooldown := fs.Duration("remediate-cooldown", time.Minute, "minimum spacing between remediations of the same node")
	remMax := fs.Int("remediate-max", 1, "nodes remediated concurrently at most")
	dryRun := fs.Bool("dry-run", false, "with -react=drain: log remediation decisions without executing the drains")
	autoscale := fs.Bool("autoscale", false, "elastically resize sharded segments (:sK) with their measured saturation")
	asLow := fs.Float64("autoscale-low", 0.15, "saturation below this scales a shard group in")
	asHigh := fs.Float64("autoscale-high", 0.75, "saturation above this scales a shard group out")
	asMin := fs.Int("autoscale-min", 1, "shard-count floor the autoscaler will not shrink below")
	asMax := fs.Int("autoscale-max", 8, "shard-count ceiling the autoscaler will not grow past")
	asStep := fs.Int("autoscale-step", 2, "shards added or removed per resize")
	asCooldown := fs.Duration("autoscale-cooldown", 10*time.Second, "minimum spacing between resizes of the same shard group")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var specs []river.PipelineSpec
	switch {
	case *specFile != "":
		raw, err := os.ReadFile(*specFile)
		if err != nil {
			return fmt.Errorf("coord: %w", err)
		}
		if err := json.Unmarshal(raw, &specs); err != nil {
			return fmt.Errorf("coord: parse %s: %w", *specFile, err)
		}
	case *sinkAddr == "":
		return fmt.Errorf("coord: -sink is required")
	default:
		segs, err := parseSegments(*segments, *replicas)
		if err != nil {
			return fmt.Errorf("coord: %w", err)
		}
		if *pipelines <= 1 {
			specs = []river.PipelineSpec{{Segments: segs, SinkAddr: *sinkAddr}}
			break
		}
		for i := 1; i <= *pipelines; i++ {
			specs = append(specs, river.PipelineSpec{
				ID:       fmt.Sprintf("p%d", i),
				Segments: append([]river.SegmentSpec(nil), segs...),
				SinkAddr: *sinkAddr,
			})
		}
	}
	placer, err := parsePlacer(*placerName)
	if err != nil {
		return fmt.Errorf("coord: %w", err)
	}
	coord, err := river.NewCoordinator(river.Config{
		ListenAddr:        *listen,
		Pipelines:         specs,
		HeartbeatInterval: *heartbeat,
		HeartbeatTimeout:  *timeout,
		MinNodes:          *minNodes,
		Placer:            placer,
		StateDir:          *stateDir,
		RestartGrace:      *grace,
		DisconnectGrace:   *disconnectGrace,
		JournalNoFsync:    !*fsync,
		MetricsAddr:       *metricsAddr,
		Monitor:           river.MonitorConfig{Disabled: !*monitor},
		Remediate: river.RemediateConfig{
			Mode:          *react,
			DryRun:        *dryRun,
			Cooldown:      *remCooldown,
			MaxConcurrent: *remMax,
		},
		Autoscale: river.AutoscaleConfig{
			Enabled:   *autoscale,
			LowWater:  *asLow,
			HighWater: *asHigh,
			MinShards: *asMin,
			MaxShards: *asMax,
			Step:      *asStep,
			Cooldown:  *asCooldown,
		},
		Logf: func(format string, a ...any) { fmt.Printf(format+"\n", a...) },
	})
	if err != nil {
		return err
	}
	durable := ""
	if *stateDir != "" {
		durable = fmt.Sprintf(", state %s", *stateDir)
		if !*fsync {
			durable += " (no fsync)"
		}
	}
	fmt.Printf("coordinator listening on %s as epoch %d (%d pipeline(s), placer %s%s)\n",
		coord.Addr(), coord.Epoch(), len(specs), *placerName, durable)
	if ma := coord.MetricsAddr(); ma != "" {
		fmt.Printf("metrics on http://%s/metrics (pprof on /debug/pprof)\n", ma)
	}
	<-interruptContext().Done()
	return coord.Close()
}

// runPipeline adds or removes a pipeline on a running coordinator:
// `pipeline add` submits a new spec (placed onto the shared node pool by
// the next reconcile passes, journaled so a restart reloads it),
// `pipeline rm` stops and forgets one.
func runPipeline(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("pipeline: want add or rm")
	}
	verb := args[0]
	fs := flag.NewFlagSet("pipeline "+verb, flag.ExitOnError)
	coordAddr := fs.String("coord", "", "coordinator address (required)")
	id := fs.String("id", "", "pipeline ID (required)")
	segments := fs.String("segments", "extract", "comma-separated segment types (add)")
	sinkAddr := fs.String("sink", "", "terminal sink address (add; required)")
	replicas := fs.Int("replicas", 1, "default replica count (add)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *coordAddr == "" || *id == "" {
		return fmt.Errorf("pipeline %s: -coord and -id are required", verb)
	}
	switch verb {
	case "add":
		if *sinkAddr == "" {
			return fmt.Errorf("pipeline add: -sink is required")
		}
		segs, err := parseSegments(*segments, *replicas)
		if err != nil {
			return fmt.Errorf("pipeline add: %w", err)
		}
		spec := river.PipelineSpec{ID: *id, Segments: segs, SinkAddr: *sinkAddr}
		if err := river.RequestPipelineAdd(*coordAddr, spec, 10*time.Second); err != nil {
			return err
		}
		fmt.Printf("pipeline %s added (%d segment(s) -> sink %s)\n", *id, len(segs), *sinkAddr)
	case "rm":
		if err := river.RequestPipelineRemove(*coordAddr, *id, 10*time.Second); err != nil {
			return err
		}
		fmt.Printf("pipeline %s removed\n", *id)
	default:
		return fmt.Errorf("pipeline: unknown verb %q (want add or rm)", verb)
	}
	return nil
}

// runNode runs a node agent that hosts segments the coordinator assigns.
// The agent supervises its own control sessions: started before the
// coordinator it retries the dial with backoff, and when a session drops
// its hosted segments keep running while it reconnects and re-registers
// with its inventory — so a coordinator restart never touches the data
// plane. Interrupting the process stops the hosted segments (node death).
func runNode(args []string) error {
	fs := flag.NewFlagSet("node", flag.ExitOnError)
	name := fs.String("name", "", "node name (required, unique per coordinator)")
	coordAddr := fs.String("coord", "", "coordinator address (required)")
	host := fs.String("host", "127.0.0.1", "interface hosted segments listen on (must be dialable by upstream)")
	batch := fs.Int("batch", 64, "records per hosted streamout batch (<=1 writes per record)")
	frame := fs.String("frame", "v2", "wire framing for hosted streamouts: v2 (batch frames, hardware CRC) or v1 (per-record frames)")
	queue := fs.Int("queue", pipeline.DefaultQueueSize, "hosted streamin emit-queue bound (0 = direct emit)")
	retries := fs.Int("retry", 0, "consecutive failed connection attempts before giving up (0 = retry forever)")
	retryMax := fs.Duration("retry-max", 2*time.Second, "cap on the jittered reconnect backoff")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *coordAddr == "" {
		return fmt.Errorf("node: -name and -coord are required")
	}
	agent := river.NewAgent(*name, *coordAddr, builtinRegistry())
	agent.ListenHost = *host
	agent.MetricsAddr = *metricsAddr
	policy, err := flushPolicy(*batch, *frame)
	if err != nil {
		return fmt.Errorf("node: %w", err)
	}
	agent.Node().FlushPolicy = policy
	agent.Node().QueueSize = *queue
	agent.ReconnectMax = *retryMax
	agent.DialAttempts = *retries
	if *retries == 0 {
		agent.DialAttempts = -1 // CLI nodes retry forever by default
	}
	agent.Logf = func(format string, a ...any) { fmt.Printf(format+"\n", a...) }
	return agent.Run(interruptContext())
}

// runStatus prints a coordinator's cluster snapshot, either as the
// human-readable report or (-json) as the ClusterStatus JSON schema —
// deterministically ordered (nodes and segments sorted by name,
// placements in topology order), so scripts and tests can diff it.
func runStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	coordAddr := fs.String("coord", "", "coordinator address (required)")
	asJSON := fs.Bool("json", false, "emit the machine-readable ClusterStatus JSON instead of the report")
	pipeID := fs.String("pipeline", "", "report only this pipeline's placements")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordAddr == "" {
		return fmt.Errorf("status: -coord is required")
	}
	st, err := river.FetchStatus(*coordAddr, 5*time.Second)
	if err != nil {
		return err
	}
	if *pipeID != "" {
		kept := st.Pipelines[:0]
		for _, p := range st.Pipelines {
			if p.ID == *pipeID {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			return fmt.Errorf("status: coordinator has no pipeline %q", *pipeID)
		}
		st.Pipelines = kept
		st.Placements = kept[0].Placements
		st.EntryAddr, st.SinkAddr = kept[0].EntryAddr, kept[0].SinkAddr
	}
	if *asJSON {
		raw, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(raw))
		return nil
	}
	fmt.Printf("epoch: %d\nentry: %s\nsink:  %s\n", st.Epoch, orDash(st.EntryAddr), st.SinkAddr)
	fmt.Printf("nodes (%d):\n", len(st.Nodes))
	for _, n := range st.Nodes {
		proto := n.Proto
		if proto == 0 {
			proto = 1
		}
		fmt.Printf("  %-12s last heartbeat %4dms ago (proto v%d)\n", n.Name, n.LastBeatMS, proto)
		for _, s := range n.Segments {
			state := ""
			if s.Failed {
				state = " FAILED"
				if s.Err != "" {
					state += " (" + s.Err + ")"
				}
			}
			// Pre-v2 agents carry no flow telemetry: their counters decode as
			// zero, which is "no data", not "idle" — print "?" so operators
			// don't mistake an old agent's silence for an empty queue.
			lag, queue := fmt.Sprintf("%d", s.LagValue()), fmt.Sprintf("%d/%d", s.QueueDepth, s.QueueCap)
			if proto < 2 {
				lag, queue = "?", "?/?"
			}
			fmt.Printf("    %-14s %-10s at %-21s processed=%d emitted=%d lag=%s queue=%s conns=%d repairs=%d%s\n",
				s.Name, "("+s.Type+")", s.Addr, s.Processed, s.Emitted, lag, queue, s.Conns, s.BadCloses, state)
			fmt.Printf("    %-14s %-10s out: records=%d batches=%d bytes=%d\n",
				"", "", s.RecordsOut, s.BatchesOut, s.BytesOut)
			switch s.Role {
			case river.RoleSplit:
				fmt.Printf("    %-14s %-10s split: legs=%d leg_drops=%d\n", "", "", s.Legs, s.LegDrops)
			case river.RoleMerge:
				fmt.Printf("    %-14s %-10s merge: legs=%d dups=%d skipped=%d untagged=%d\n",
					"", "", s.Legs, s.Dups, s.Skipped, s.Untagged)
			case river.RolePartition:
				fmt.Printf("    %-14s %-10s partition: legs=%d leg_drops=%d\n", "", "", s.Legs, s.LegDrops)
			case river.RoleCollect:
				fmt.Printf("    %-14s %-10s collect: legs=%d dups=%d skipped=%d untagged=%d\n",
					"", "", s.Legs, s.Dups, s.Skipped, s.Untagged)
			}
		}
	}
	printPlacements := func(ps []river.PlacementStatus) {
		for _, p := range ps {
			kind := p.Type
			if p.Role != "" && kind == "" {
				kind = p.Role
			}
			if p.Placed {
				fmt.Printf("  %-14s (%s) on %s at %s\n", p.Seg, kind, p.Node, p.Addr)
			} else {
				fmt.Printf("  %-14s (%s) UNPLACED\n", p.Seg, kind)
			}
		}
	}
	if len(st.Pipelines) > 1 || (len(st.Pipelines) == 1 && st.Pipelines[0].ID != "") {
		fmt.Printf("pipelines (%d):\n", len(st.Pipelines))
		for _, pl := range st.Pipelines {
			id := pl.ID
			if id == "" {
				id = "(default)"
			}
			fmt.Printf("pipeline %s: entry %s -> sink %s (%d unit(s)):\n",
				id, orDash(pl.EntryAddr), pl.SinkAddr, len(pl.Placements))
			printPlacements(pl.Placements)
			printShardGroups(st, pl.Placements)
		}
		return nil
	}
	fmt.Printf("placements (%d):\n", len(st.Placements))
	printPlacements(st.Placements)
	printShardGroups(st, st.Placements)
	return nil
}

// printShardGroups renders the elastic view of each sharded group in ps:
// its live K, per-leg throughput and queue, and the skew ratio — the
// hottest leg's processed count over the per-leg mean, so 1.00 is a
// perfectly spread key space and K is the worst case (every record on
// one leg). Replica groups render nothing here; their legs are mirrors,
// not partitions, and skew over copies is meaningless.
func printShardGroups(st *river.ClusterStatus, ps []river.PlacementStatus) {
	segs := make(map[string]river.SegmentStatus)
	for _, n := range st.Nodes {
		for _, s := range n.Segments {
			segs[s.Name] = s
		}
	}
	var order []string
	groups := make(map[string][]river.PlacementStatus)
	for _, p := range ps {
		if p.Role != river.RoleShard {
			continue
		}
		g := p.Group
		if g == "" {
			if i := strings.LastIndexByte(p.Seg, '/'); i >= 0 {
				g = p.Seg[:i]
			}
		}
		if _, ok := groups[g]; !ok {
			order = append(order, g)
		}
		groups[g] = append(groups[g], p)
	}
	for _, g := range order {
		legs := groups[g]
		var total, hottest uint64
		for _, p := range legs {
			if s, ok := segs[p.Seg]; ok {
				total += s.Processed
				if s.Processed > hottest {
					hottest = s.Processed
				}
			}
		}
		skew := 1.0
		if total > 0 {
			skew = float64(hottest) * float64(len(legs)) / float64(total)
		}
		fmt.Printf("  shard group %s: K=%d skew=%.2f\n", g, len(legs), skew)
		for _, p := range legs {
			s, ok := segs[p.Seg]
			if !ok {
				fmt.Printf("    %-16s on %-12s (no telemetry yet)\n", p.Seg, orDash(p.Node))
				continue
			}
			fmt.Printf("    %-16s on %-12s processed=%d queue=%d/%d\n",
				p.Seg, p.Node, s.Processed, s.QueueDepth, s.QueueCap)
		}
	}
}

// runEvents prints a coordinator's control-plane event stream (protocol
// v6): the retained backlog, and with -follow every subsequent event as
// it happens — place, failover, drain, anomaly — until interrupted.
// -json emits one JSON event per line for scripts; the schema is the
// obs.Event wire format.
func runEvents(args []string) error {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	coordAddr := fs.String("coord", "", "coordinator address (required)")
	pipeID := fs.String("pipeline", "", "only this pipeline's events, plus cluster-wide ones (register, failover, anomaly)")
	follow := fs.Bool("follow", false, "stream live events after the backlog until interrupted")
	asJSON := fs.Bool("json", false, "one JSON event per line instead of the report")
	since := fs.Uint64("since", 0, "only events with sequence numbers greater than this")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordAddr == "" {
		return fmt.Errorf("events: -coord is required")
	}
	printEvent := func(e obs.Event) {
		if *asJSON {
			raw, err := json.Marshal(e)
			if err != nil {
				return
			}
			fmt.Println(string(raw))
			return
		}
		var parts []string
		if e.Phase != "" {
			parts = append(parts, "phase="+e.Phase)
		}
		if e.Pipeline != "" {
			parts = append(parts, "pipeline="+e.Pipeline)
		}
		if e.Unit != "" {
			parts = append(parts, "unit="+e.Unit)
		}
		if e.Node != "" {
			parts = append(parts, "node="+e.Node)
		}
		if e.Addr != "" {
			parts = append(parts, "addr="+e.Addr)
		}
		if e.Metric != "" {
			parts = append(parts, fmt.Sprintf("%s=%g z=%.1f", e.Metric, e.Value, e.Score))
		} else if e.Value != 0 {
			parts = append(parts, fmt.Sprintf("value=%g", e.Value))
		}
		if e.Detail != "" {
			parts = append(parts, "("+e.Detail+")")
		}
		fmt.Printf("%6d %s %-12s %s\n", e.Seq,
			time.UnixMilli(e.TimeMS).Format("15:04:05.000"), e.Type, strings.Join(parts, " "))
	}
	if !*follow {
		events, err := river.FetchEvents(*coordAddr, *pipeID, *since, 10*time.Second)
		if err != nil {
			return err
		}
		for _, e := range events {
			printEvent(e)
		}
		return nil
	}
	// Follow survives a coordinator bounce: on connection loss, reconnect
	// with backoff and resume from the last sequence number seen, so no
	// duplicates print. A restarted coordinator's in-memory event log
	// restarts its sequence numbers, which would make a stale cursor
	// suppress every fresh event — the epoch probe detects the new
	// incarnation and resets the cursor instead.
	ctx := interruptContext()
	last := *since
	var epoch uint64
	if st, err := river.FetchStatus(*coordAddr, 5*time.Second); err == nil {
		epoch = st.Epoch
	}
	backoff := time.Second
	for {
		err := river.WatchEvents(ctx, *coordAddr, *pipeID, last, func(e obs.Event) {
			last = e.Seq
			backoff = time.Second
			printEvent(e)
		})
		if ctx.Err() != nil {
			return nil
		}
		fmt.Fprintf(os.Stderr, "events: stream lost (%v); reconnecting in %s (resume after seq %d)\n", err, backoff, last)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil
		}
		if backoff *= 2; backoff > 15*time.Second {
			backoff = 15 * time.Second
		}
		if st, err := river.FetchStatus(*coordAddr, 5*time.Second); err == nil && st.Epoch != epoch {
			fmt.Fprintf(os.Stderr, "events: coordinator restarted (epoch %d -> %d); resetting resume cursor\n", epoch, st.Epoch)
			epoch, last = st.Epoch, 0
		}
	}
}

// runDrain asks the coordinator for a planned zero-repair move of one
// placement unit (a segment, or a replica like "s1-relay/r2"). Units of
// a named pipeline are addressed with -pipeline ID, or directly by their
// scoped name ("ID:seg").
func runDrain(args []string) error {
	fs := flag.NewFlagSet("drain", flag.ExitOnError)
	coordAddr := fs.String("coord", "", "coordinator address (required)")
	seg := fs.String("seg", "", "placement unit to move (required)")
	pipeID := fs.String("pipeline", "", "pipeline the unit belongs to (default: the default pipeline)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordAddr == "" || *seg == "" {
		return fmt.Errorf("drain: -coord and -seg are required")
	}
	unit := *seg
	if *pipeID != "" {
		unit = *pipeID + ":" + unit
	}
	if err := river.RequestDrain(*coordAddr, unit, 30*time.Second); err != nil {
		return err
	}
	fmt.Printf("drained %s\n", unit)
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

var (
	interruptOnce sync.Once
	interruptCtx  context.Context
)

// interruptContext returns a process-wide context cancelled by
// SIGINT/SIGTERM.
func interruptContext() context.Context {
	interruptOnce.Do(func() {
		ctx, cancel := context.WithCancel(context.Background())
		interruptCtx = ctx
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-ch
			cancel()
		}()
	})
	return interruptCtx
}
