// Command ensembles extracts ensembles from a WAV file (16-bit PCM) and
// reports them; optionally each ensemble is written out as its own WAV
// file. Without an input file it generates a synthetic station clip,
// which makes the tool self-demonstrating:
//
//	ensembles                       # synthetic 30 s clip
//	ensembles -in clip.wav -outdir cuts/
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/ops"
	"repro/internal/synth"
	"repro/internal/wav"
)

func main() {
	var (
		in      = flag.String("in", "", "input WAV file (empty = generate a synthetic clip)")
		outDir  = flag.String("outdir", "", "write each ensemble as a WAV file into this directory")
		seed    = flag.Int64("seed", 1, "seed for the synthetic clip")
		seconds = flag.Float64("seconds", 30, "synthetic clip length")
		sigma   = flag.Float64("sigma", 5, "trigger threshold in standard deviations")
	)
	flag.Parse()
	if err := run(*in, *outDir, *seed, *seconds, *sigma); err != nil {
		fmt.Fprintln(os.Stderr, "ensembles:", err)
		os.Exit(1)
	}
}

func run(in, outDir string, seed int64, seconds, sigma float64) error {
	var clip ops.Clip
	switch {
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		format, pcm, err := wav.Decode(f)
		if err != nil {
			return err
		}
		mono := make([]float64, 0, len(pcm)/format.Channels)
		for i := 0; i+format.Channels <= len(pcm); i += format.Channels {
			var sum float64
			for c := 0; c < format.Channels; c++ {
				sum += float64(pcm[i+c]) / 32768
			}
			mono = append(mono, sum/float64(format.Channels))
		}
		clip = ops.Clip{ID: filepath.Base(in), SampleRate: float64(format.SampleRate), Samples: mono}
		fmt.Printf("input: %s (%.1fs at %d Hz)\n", in, float64(len(mono))/float64(format.SampleRate), format.SampleRate)
	default:
		rng := rand.New(rand.NewSource(seed))
		c, err := synth.GenerateClip(rng, synth.ClipConfig{Seconds: seconds})
		if err != nil {
			return err
		}
		clip = ops.Clip{ID: "synthetic", SampleRate: c.SampleRate, Samples: c.Samples}
		fmt.Printf("input: synthetic clip (%.0fs at %.0f Hz), ground truth:\n", c.Seconds(), c.SampleRate)
		for _, e := range c.Events {
			fmt.Printf("  %s at %.2fs-%.2fs\n", e.Species,
				float64(e.Start)/c.SampleRate, float64(e.End)/c.SampleRate)
		}
	}

	cfg := ops.DefaultExtractConfig()
	cfg.TriggerSigma = sigma
	ext, err := core.NewExtractor(cfg).Extract(clip)
	if err != nil {
		return err
	}
	fmt.Printf("extracted %d ensembles; data reduction %.1f%%\n", len(ext.Ensembles), ext.Reduction()*100)
	for i, e := range ext.Ensembles {
		fmt.Printf("  ensemble %2d: start %7.2fs, length %6.3fs\n",
			i, e.StartSec, float64(len(e.Samples))/e.SampleRate)
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(outDir, fmt.Sprintf("ensemble-%03d.wav", i))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			err = wav.Encode(f, wav.Format{SampleRate: int(e.SampleRate), Channels: 1}, dsp.ToPCM16(e.Samples))
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
		}
	}
	if outDir != "" {
		fmt.Printf("wrote %d WAV files to %s\n", len(ext.Ensembles), outDir)
	}
	return nil
}
