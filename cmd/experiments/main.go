// Command experiments regenerates every table and figure of the paper's
// evaluation section against the synthetic substrate:
//
//	table1     species census of the experimental data sets
//	table2     MESO classification accuracy (LOO + resubstitution, 4 sets)
//	table3     confusion matrix (PAA ensembles, leave-one-out)
//	fig2       oscillogram + spectrogram of a clip
//	fig3       spectrogram after PAA
//	fig4       PAA -> SAX conversion example
//	fig5       pipeline operator topology
//	fig6       trigger signal and extracted ensembles
//	reduction  ensemble-extraction data reduction (the ~80% headline)
//
// By default experiments run at a reduced -scale so the whole suite
// finishes in seconds; -scale 1 -loo-reps 20 -resub-reps 100 reproduces
// the paper's full protocol (allow considerable runtime).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dsp"
	"repro/internal/experiments"
	"repro/internal/synth"
	"repro/internal/timeseries"
)

func main() {
	var (
		run       = flag.String("run", "all", "experiment to run: all, table1, table2, table3, fig2, fig3, fig4, fig5, fig6, reduction")
		scale     = flag.Float64("scale", 0.15, "dataset scale relative to the paper's Table 1 (1 = full)")
		looReps   = flag.Int("loo-reps", 2, "leave-one-out repetitions (paper: 20)")
		resubReps = flag.Int("resub-reps", 10, "resubstitution repetitions (paper: 100)")
		maxFolds  = flag.Int("max-folds", 60, "cap on LOO folds per repetition (0 = all, as in the paper)")
		seed      = flag.Int64("seed", 1, "random seed for synthetic data")
		outDir    = flag.String("out", "", "directory for PGM figure renderings (empty = skip images)")
		clips     = flag.Int("clips", 8, "clips for the reduction experiment")
	)
	flag.Parse()
	cfg := experiments.Config{
		Scale:     *scale,
		LOOReps:   *looReps,
		ResubReps: *resubReps,
		MaxFolds:  *maxFolds,
		Seed:      *seed,
		Clips:     *clips,
	}
	if err := dispatch(*run, cfg, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func dispatch(run string, cfg experiments.Config, outDir string) error {
	todo := strings.Split(run, ",")
	if run == "all" {
		todo = []string{"table1", "reduction", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "fig6"}
	}
	for _, name := range todo {
		fmt.Printf("==== %s ====\n", name)
		var err error
		switch name {
		case "table1":
			err = runTable1(cfg)
		case "table2":
			err = runTable2(cfg)
		case "table3":
			err = runTable3(cfg)
		case "fig2":
			err = runFig2(cfg, outDir, false)
		case "fig3":
			err = runFig2(cfg, outDir, true)
		case "fig4":
			err = runFig4()
		case "fig5":
			runFig5()
		case "fig6":
			err = runFig6(cfg)
		case "reduction":
			err = runReduction(cfg)
		default:
			err = fmt.Errorf("unknown experiment %q", name)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
	}
	return nil
}

func runTable1(cfg experiments.Config) error {
	census, err := experiments.Table1(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-26s %9s %10s\n", "Code", "Common name", "Patterns", "Ensembles")
	var pats, ens int
	for _, c := range census {
		fmt.Printf("%-6s %-26s %9d %10d\n", c.Code, c.Name, c.Patterns, c.Ensembles)
		pats += c.Patterns
		ens += c.Ensembles
	}
	fmt.Printf("%-6s %-26s %9d %10d\n", "total", "", pats, ens)
	return nil
}

func runTable2(cfg experiments.Config) error {
	rows, err := experiments.Table2(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-16s %10s %9s %9s %9s\n",
		"Data set", "Protocol", "Accuracy", "±Std", "Train(s)", "Test(s)")
	for _, r := range rows {
		fmt.Printf("%-14s %-16s %9.1f%% %8.1f%% %9.2f %9.2f\n",
			r.Dataset, r.Protocol, r.Result.MeanAccuracy*100, r.Result.StdDev*100,
			r.Result.TrainTime, r.Result.TestTime)
	}
	return nil
}

func runTable3(cfg experiments.Config) error {
	m, err := experiments.Table3(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Confusion matrix (PAA ensembles, leave-one-out; row = actual, % of row):")
	fmt.Print(m.Format())
	fmt.Printf("overall accuracy: %.1f%%\n", m.Accuracy()*100)
	return nil
}

func runFig2(cfg experiments.Config, outDir string, paa bool) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	clip, err := synth.GenerateClip(rng, synth.ClipConfig{Seconds: 10, Events: 3})
	if err != nil {
		return err
	}
	if !paa {
		fmt.Println("Oscillogram (normalized amplitude):")
		fmt.Print(experiments.Oscillogram(clip.Samples, 96, 10))
	}
	sg, err := dsp.ComputeSpectrogram(clip.Samples, dsp.SpectrogramConfig{
		SampleRate: clip.SampleRate,
		FrameLen:   1024,
		Hop:        1024,
	})
	if err != nil {
		return err
	}
	name := "fig2"
	if paa {
		name = "fig3"
		sg = experiments.PAASpectrogram(sg, 10)
		fmt.Println("Spectrogram after PAA (10x reduction per column):")
	} else {
		fmt.Println("Spectrogram (0-12.3 kHz, time left to right):")
	}
	fmt.Print(sg.ASCII(96, 16))
	for _, e := range clip.Events {
		fmt.Printf("ground truth: %s at %.2fs-%.2fs\n", e.Species,
			float64(e.Start)/clip.SampleRate, float64(e.End)/clip.SampleRate)
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(outDir, name+".pgm")
		if err := os.WriteFile(path, sg.PGM(), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

func runFig4() error {
	// The paper's example: a short series converted to PAA then SAX with
	// alphabet 5.
	series := make([]float64, 180)
	for i := range series {
		t := float64(i) / 60
		series[i] = -1.5 + 3*t*0.33 + 0.8*float64(i%13)/13
	}
	sax, err := timeseries.NewSAX(5)
	if err != nil {
		return err
	}
	norm := timeseries.ZNormalize(series)
	paa, err := timeseries.PAA(norm, 18)
	if err != nil {
		return err
	}
	word := sax.WordOfNormalized(paa)
	fmt.Println("Z-normalized series reduced to 18 PAA segments, alphabet 5:")
	fmt.Print("PAA:  ")
	for _, v := range paa {
		fmt.Printf("%6.2f", v)
	}
	fmt.Println()
	fmt.Print("SAX:  ")
	for _, s := range word {
		fmt.Printf("%6d", s+1) // paper numbers symbols from 1
	}
	fmt.Println()
	fmt.Printf("word: %s\n", timeseries.WordString(word, 5))
	return nil
}

func runFig5() {
	fmt.Println("Acquisition: station -> readout(storage)")
	fmt.Println("Analysis pipeline (Figure 5):")
	p := experiments.Figure5Pipeline()
	fmt.Println(" ", p.Topology())
}

func runFig6(cfg experiments.Config) error {
	fig, err := experiments.Figure6(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Trigger signal (1 = ensemble open):")
	fmt.Print(experiments.BinaryTrace(fig.Trigger, 96))
	fmt.Println("Extracted ensembles over original signal:")
	fmt.Print(experiments.Oscillogram(fig.Masked, 96, 10))
	fmt.Printf("%d ensembles extracted; reduction %.1f%%\n", fig.Ensembles, fig.Reduction*100)
	for _, e := range fig.Events {
		fmt.Printf("ground truth: %s at %.2fs-%.2fs\n", e.Species, e.StartSec, e.EndSec)
	}
	return nil
}

func runReduction(cfg experiments.Config) error {
	red, err := experiments.Reduction(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("clips: %d (%.0f s of audio)\n", red.Clips, red.Seconds)
	fmt.Printf("samples in:   %12d\n", red.SamplesIn)
	fmt.Printf("samples kept: %12d\n", red.SamplesKept)
	fmt.Printf("ensembles:    %12d\n", red.Ensembles)
	fmt.Printf("data reduction: %.1f%%  (paper: 80.6%%)\n", red.Reduction*100)
	return nil
}
