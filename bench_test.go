// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation (see DESIGN.md §4 for the experiment
// index) and measures the ablations called out in DESIGN.md §5. Shape
// metrics (accuracy, reduction) are attached to the benchmark output via
// ReportMetric so `go test -bench` doubles as the reproduction run:
//
//	go test -bench=Table -benchmem       # Tables 1-3
//	go test -bench=Fig -benchmem         # Figures 2-6
//	go test -bench=Ablation -benchmem    # design-choice sweeps
//
// Benchmarks run at a reduced dataset scale so the suite completes in
// minutes; cmd/experiments reproduces the full protocol.
package repro

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/meso"
	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/pipeline"
	"repro/internal/record"
	"repro/internal/replica"
	"repro/internal/shard"
	"repro/internal/synth"
	"repro/internal/timeseries"
)

// benchCfg is the scaled-down experiment configuration shared by the
// table benchmarks.
func benchCfg() experiments.Config {
	return experiments.Config{Scale: 0.05, LOOReps: 1, ResubReps: 1, MaxFolds: 20, Seed: 1, Clips: 2}
}

// BenchmarkTable1DatasetBuild regenerates the Table 1 census (dataset
// synthesis + featurization).
func BenchmarkTable1DatasetBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		census, err := experiments.Table1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(census) != 10 {
			b.Fatalf("census has %d species", len(census))
		}
	}
}

// table2Bench runs one Table 2 cell.
func table2Bench(b *testing.B, dataset, protocol string) {
	b.Helper()
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Dataset == dataset && r.Protocol == protocol {
				acc = r.Result.MeanAccuracy
			}
		}
	}
	b.ReportMetric(acc*100, "accuracy%")
}

// The four Table 2 data sets under leave-one-out. Resubstitution rows are
// produced by the same call; benchmarked separately below so regressions
// localize.
func BenchmarkTable2PAAEnsembleLOO(b *testing.B) { table2Bench(b, "PAA Ensemble", "Leave-one-out") }

func BenchmarkTable2PAAEnsembleResub(b *testing.B) {
	table2Bench(b, "PAA Ensemble", "Resubstitution")
}

// BenchmarkTable2AllRows regenerates the complete table.
func BenchmarkTable2AllRows(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatalf("table 2 has %d rows, want 8", len(rows))
		}
	}
}

// BenchmarkTable3Confusion regenerates the confusion matrix.
func BenchmarkTable3Confusion(b *testing.B) {
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		m, err := experiments.Table3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		acc = m.Accuracy()
	}
	b.ReportMetric(acc*100, "accuracy%")
}

// BenchmarkFig2Spectrogram renders the Figure 2 spectrogram of a 10 s
// clip.
func BenchmarkFig2Spectrogram(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	clip, err := synth.GenerateClip(rng, synth.ClipConfig{Seconds: 10, Events: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sg, err := dsp.ComputeSpectrogram(clip.Samples, dsp.SpectrogramConfig{
			SampleRate: clip.SampleRate,
			FrameLen:   1024,
			Hop:        1024,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = sg.ASCII(96, 16)
	}
}

// BenchmarkFig3PAASpectrogram adds the per-column PAA reduction.
func BenchmarkFig3PAASpectrogram(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	clip, err := synth.GenerateClip(rng, synth.ClipConfig{Seconds: 10, Events: 3})
	if err != nil {
		b.Fatal(err)
	}
	sg, err := dsp.ComputeSpectrogram(clip.Samples, dsp.SpectrogramConfig{
		SampleRate: clip.SampleRate,
		FrameLen:   1024,
		Hop:        1024,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.PAASpectrogram(sg, 10)
	}
}

// BenchmarkFig4SAXConversion benchmarks the PAA->SAX example conversion.
func BenchmarkFig4SAXConversion(b *testing.B) {
	series := make([]float64, 1024)
	rng := rand.New(rand.NewSource(2))
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	sax, err := timeseries.NewSAX(5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sax.Word(series, 18); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Topology composes the full Figure 5 pipeline.
func BenchmarkFig5Topology(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := experiments.Figure5Pipeline()
		if p.Topology() == "" {
			b.Fatal("empty topology")
		}
	}
}

// BenchmarkFig6Extraction runs the trigger/ensemble extraction of Figure 6
// over one 10 s clip and reports the reduction.
func BenchmarkFig6Extraction(b *testing.B) {
	b.ReportAllocs()
	var red float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure6(experiments.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		red = fig.Reduction
	}
	b.ReportMetric(red*100, "reduction%")
}

// BenchmarkDataReduction measures the headline ~80% data reduction over
// synthetic 30 s station clips (paper §4: 80.6%).
func BenchmarkDataReduction(b *testing.B) {
	b.ReportAllocs()
	var red float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Reduction(experiments.Config{Seed: 1, Clips: 2})
		if err != nil {
			b.Fatal(err)
		}
		red = r.Reduction
	}
	b.ReportMetric(red*100, "reduction%")
}

// streamOutBench measures streamout transport throughput over real TCP:
// records with 64-byte PCM payloads (32 samples, the station record
// granularity scaled down) are pushed through a StreamOut framed by the
// given policy into a decoding receiver. The receiver decodes every record
// with the ordinary Reader, so the numbers include full wire framing on
// both sides, and reports records/sec alongside ns/op.
func streamOutBench(b *testing.B, policy record.BatchConfig) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// The receiver decodes into pooled records and releases each
			// one — the steady-state receive discipline of a hosted
			// streamin.
			rd := record.NewReaderSize(conn, record.DefaultMaxBatchBytes)
			rd.SetPooled(true)
			for {
				rec, err := rd.Read()
				if err != nil {
					break
				}
				record.Release(rec)
			}
			conn.Close()
		}
	}()

	out := pipeline.NewStreamOutBatched(ln.Addr().String(), policy)
	samples := make([]int16, 32) // 64-byte PCM payload
	for i := range samples {
		samples[i] = int16(i * 256)
	}
	r := record.NewData(record.SubtypeAudio)
	r.SetPCM16(samples)
	b.SetBytes(int64(record.WireSize(r)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Seq = uint64(i)
		if err := out.Consume(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := out.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	out.Close()
	ln.Close()
	<-drained
}

// BenchmarkStreamOutThroughput contrasts the per-record baseline (one
// network write and flush per record, the pre-batching behavior) against
// batched framing on the streamout hot path. The batch variants are the
// headline transport win: one syscall carries a whole batch.
func BenchmarkStreamOutThroughput(b *testing.B) {
	b.Run("per-record", func(b *testing.B) {
		streamOutBench(b, record.PerRecordConfig())
	})
	b.Run("batch-64", func(b *testing.B) {
		streamOutBench(b, record.DefaultBatchConfig())
	})
	b.Run("batch-256", func(b *testing.B) {
		cfg := record.DefaultBatchConfig()
		cfg.MaxRecords = 256
		streamOutBench(b, cfg)
	})
	// The v1 framing escape hatch at the same batch geometry: isolates
	// what the v2 format itself (one header + one hardware CRC per batch
	// instead of per record) buys over pure batching.
	b.Run("v1-batch-64", func(b *testing.B) {
		cfg := record.DefaultBatchConfig()
		cfg.Frame = record.FrameV1
		streamOutBench(b, cfg)
	})
}

// BenchmarkMergerDedupThroughput measures the replication merger's fan-in
// hot path over real TCP: three legs concurrently deliver the same tagged
// record stream (batch-framed, 64-byte PCM payloads) and the merger
// deduplicates them back to exactly-once output. ns/op is per unique
// record delivered; records/sec counts the deduped output rate, so the
// number is directly comparable to the streamout throughput benchmark one
// hop upstream of it.
func BenchmarkMergerDedupThroughput(b *testing.B) {
	const legs = 3
	m, err := replica.NewMerger(replica.MergerConfig{Group: "bench", ListenAddr: "127.0.0.1:0", Pooled: true})
	if err != nil {
		b.Fatal(err)
	}
	var emitted atomic.Uint64
	sink := pipeline.EmitterFunc(func(r *record.Record) error {
		emitted.Add(1)
		record.Release(r) // pooled merger: the sink owns and recycles
		return nil
	})
	runDone := make(chan error, 1)
	go func() { runDone <- m.Run(sink) }()

	samples := make([]int16, 32) // 64-byte PCM payload
	proto := record.NewData(record.SubtypeAudio)
	proto.SetPCM16(samples)
	b.SetBytes(int64(record.WireSize(proto)))
	b.ReportAllocs()
	b.ResetTimer()

	stream := record.ReplicaStreamID("bench")
	var wg sync.WaitGroup
	for leg := 0; leg < legs; leg++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", m.Addr())
			if err != nil {
				b.Error(err)
				return
			}
			defer conn.Close()
			bw := record.NewBatchWriter(conn, record.DefaultBatchConfig())
			r := record.NewData(record.SubtypeAudio)
			r.SetPCM16(samples)
			for i := 0; i < b.N; i++ {
				record.TagReplica(r, stream, 1, uint64(i))
				if err := bw.Write(r); err != nil {
					b.Error(err)
					return
				}
			}
			if err := bw.Flush(); err != nil {
				b.Error(err)
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Minute)
	for emitted.Load() < uint64(b.N) && !b.Failed() {
		if time.Now().After(deadline) {
			b.Fatalf("merger emitted %d of %d records before the deadline", emitted.Load(), b.N)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	_ = m.Close()
	<-runDone
	if got := emitted.Load(); got != uint64(b.N) {
		b.Fatalf("emitted %d records, want exactly %d", got, b.N)
	}
}

// shardedBench measures the sharded data plane end to end over real TCP:
// a partitioner fans a keyed record stream out to K leg workers, each leg
// spends a fixed per-record service time (a timed stall standing in for
// one core's worth of segment compute, so the scaling law is visible even
// on single-core CI hosts), and a collector reorders the legs' output
// back to the input order. records/sec is the collector's exactly-once
// output rate; with the per-record cost dominating, it must scale ~K.
func shardedBench(b *testing.B, k int, service time.Duration) {
	col, err := shard.NewCollector(shard.CollectorConfig{
		Group: "bench", ListenAddr: "127.0.0.1:0", Pooled: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	var emitted atomic.Uint64
	sink := pipeline.EmitterFunc(func(r *record.Record) error {
		emitted.Add(1)
		record.Release(r)
		return nil
	})
	runDone := make(chan error, 1)
	go func() { runDone <- col.Run(sink) }()

	// Leg workers: decode, stall for the service time, forward batched.
	legs := make([]string, k)
	var workers sync.WaitGroup
	listeners := make([]net.Listener, k)
	for i := range legs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		listeners[i] = ln
		legs[i] = ln.Addr().String()
		workers.Add(1)
		go func(ln net.Listener) {
			defer workers.Done()
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				fwd, err := net.Dial("tcp", col.Addr())
				if err != nil {
					conn.Close()
					return
				}
				// Per-record flush: the worker has no delay-flush timer, and
				// at a service-time-bound rate framing is not the bottleneck.
				out := record.NewBatchWriter(fwd, record.PerRecordConfig())
				rd := record.NewReaderSize(conn, record.DefaultMaxBatchBytes)
				rd.SetPooled(true)
				for {
					rec, err := rd.Read()
					if err != nil {
						break
					}
					if service > 0 {
						time.Sleep(service)
					}
					if err := out.Write(rec); err != nil {
						record.Release(rec)
						break
					}
					record.Release(rec)
				}
				_ = out.Flush()
				fwd.Close()
				conn.Close()
			}
		}(ln)
	}

	p := shard.NewPartitioner(shard.PartitionerConfig{
		Group: "bench", Epoch: 1, Legs: legs, Flush: record.DefaultBatchConfig(),
	})
	samples := make([]int16, 32) // 64-byte PCM payload
	r := record.NewData(record.SubtypeAudio)
	r.SetPCM16(samples)
	b.SetBytes(int64(record.WireSize(r)))
	// Warm the record pool to its steady-state population before timing:
	// at start the leg queues fill with up to LegQueue pool copies per leg
	// before the first Release cycles back, and that one-time burst would
	// otherwise dominate allocs/op at short benchtimes.
	warm := make([]*record.Record, (shard.DefaultLegQueue+64)*k)
	for i := range warm {
		warm[i] = record.GetCopy(r)
	}
	for _, w := range warm {
		record.Release(w)
	}
	// GC off for the timed region: a collection mid-run clears the
	// sync.Pool and the refill burst shows up as allocs/op noise in the
	// CI allocation gate. Total garbage over the run is a few MB.
	gcPct := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPct)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.SourceID = uint32(1 + i%61) // spread the keys across every leg
		if err := p.Consume(r); err != nil {
			b.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Minute)
	for emitted.Load() < uint64(b.N) && !b.Failed() {
		if time.Now().After(deadline) {
			b.Fatalf("collector emitted %d of %d records before the deadline", emitted.Load(), b.N)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	_ = p.Close()
	for _, ln := range listeners {
		_ = ln.Close()
	}
	workers.Wait()
	_ = col.Close()
	<-runDone
	if got := col.Skipped(); got != 0 {
		b.Fatalf("collector skipped %d sequence slots", got)
	}
}

// BenchmarkShardedThroughput is the headline sharding scaling law: the
// same keyed stream through K=1, 2 and 8 legs at a 50µs per-record
// service time. K=1 is the unsharded baseline (one leg bounds the
// stream); K=8 must deliver at least ~3x its records/sec (ideal 8x,
// minus partition/collect overhead), proving hot segments scale with
// data parallelism rather than a faster core.
func BenchmarkShardedThroughput(b *testing.B) {
	for _, k := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("K-%d", k), func(b *testing.B) {
			shardedBench(b, k, 50*time.Microsecond)
		})
	}
}

// BenchmarkBatchWriterFraming isolates the framing layer from TCP: encode
// throughput into an in-memory sink at both policies.
func BenchmarkBatchWriterFraming(b *testing.B) {
	r := record.NewData(record.SubtypeAudio)
	samples := make([]int16, 32)
	r.SetPCM16(samples)
	for _, tc := range []struct {
		name   string
		policy record.BatchConfig
	}{
		{"per-record", record.PerRecordConfig()},
		{"batch-64", record.DefaultBatchConfig()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			bw := record.NewBatchWriter(io.Discard, tc.policy)
			b.SetBytes(int64(record.WireSize(r)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bw.Write(r); err != nil {
					b.Fatal(err)
				}
			}
			if err := bw.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkBatchFrameCodec isolates the wire codec from both TCP and the
// writer: encode a 64-record batch of 64-byte PCM records into a reused
// buffer, or decode it back through a pooled reader, in each framing.
// The encode delta is the CRC story (64 IEEE header+trailer checksums in
// v1 vs one Castagnoli sweep in v2); the decode delta adds the one-pass
// batch verify against per-record verify.
func BenchmarkBatchFrameCodec(b *testing.B) {
	const batch = 64
	recs := make([]*record.Record, batch)
	samples := make([]int16, 32)
	for i := range recs {
		r := record.NewData(record.SubtypeAudio)
		r.Seq = uint64(i)
		r.SetPCM16(samples)
		recs[i] = r
	}
	encodeV1 := func(dst []byte) []byte {
		for _, r := range recs {
			dst = record.AppendWire(dst, r)
		}
		return dst
	}
	encodeV2 := func(dst []byte) []byte { return record.AppendBatchWire(dst, recs...) }
	wireBytes := func(enc func([]byte) []byte) int64 { return int64(len(enc(nil))) }

	b.Run("encode-v1", func(b *testing.B) {
		b.SetBytes(wireBytes(encodeV1))
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = encodeV1(buf[:0])
		}
		b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "records/sec")
	})
	b.Run("encode-v2", func(b *testing.B) {
		b.SetBytes(wireBytes(encodeV2))
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = encodeV2(buf[:0])
		}
		b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "records/sec")
	})
	for _, tc := range []struct {
		name string
		enc  func([]byte) []byte
	}{
		{"decode-v1", encodeV1},
		{"decode-v2", encodeV2},
	} {
		b.Run(tc.name, func(b *testing.B) {
			wire := tc.enc(nil)
			src := bytes.NewReader(wire)
			rd := record.NewReaderSize(src, record.DefaultMaxBatchBytes)
			rd.SetPooled(true)
			b.SetBytes(int64(len(wire)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src.Reset(wire)
				rd.Reset(src)
				for {
					rec, err := rd.Read()
					if err != nil {
						break
					}
					record.Release(rec)
				}
			}
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "records/sec")
		})
	}
}

// BenchmarkLatencyTraceObserve measures the data-plane latency tracing
// hot path: a record stamped at ingest folded into the lock-free unit
// histogram, and — in the probe variant — a trace probe additionally
// folded into the end-to-end histogram. Both run per record inside every
// hosted segment's sink stage, so allocs/op is gated at zero alongside
// the transport benchmarks: tracing must never reintroduce per-record
// allocation on the pooled path.
func BenchmarkLatencyTraceObserve(b *testing.B) {
	b.Run("record", func(b *testing.B) {
		tr := pipeline.NewLatencyTracer(obs.NewRegistry(), "bench")
		r := record.NewData(record.SubtypeAudio)
		r.SetPCM16(make([]int16, 32))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.IngressNanos = time.Now().UnixNano()
			tr.Observe(r)
		}
	})
	b.Run("probe", func(b *testing.B) {
		tr := pipeline.NewLatencyTracer(obs.NewRegistry(), "bench")
		p := record.NewTraceProbe(time.Now().UnixNano())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now := time.Now().UnixNano()
			record.FillTraceProbe(p, now)
			p.IngressNanos = now // probes take both the unit and e2e paths
			tr.Observe(p)
		}
	})
}

// BenchmarkLatencyQuantile measures the scrape-side cost of one quantile
// estimate over a populated latency histogram — the price of exposing
// p50/p95/p99 per unit on /metrics and in heartbeats.
func BenchmarkLatencyQuantile(b *testing.B) {
	reg := obs.NewRegistry()
	h := reg.Histogram("bench_latency_seconds", obs.LatencyBuckets)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100000; i++ {
		h.Observe(rng.ExpFloat64() * 0.005)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if q := h.Quantile(0.99); q <= 0 {
			b.Fatal("empty quantile")
		}
	}
}

// BenchmarkAblationSAXParams sweeps the SAX alphabet and anomaly window
// of the detector over a fixed clip, reporting extraction throughput.
// DESIGN.md §5: alphabet 8 / window 100 (the paper's settings) should be
// near the throughput/robustness knee.
func BenchmarkAblationSAXParams(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	clip, err := synth.GenerateClip(rng, synth.ClipConfig{Seconds: 5, Events: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, alphabet := range []int{4, 8, 16} {
		for _, window := range []int{50, 100, 200} {
			name := fmt.Sprintf("alphabet=%d/window=%d", alphabet, window)
			b.Run(name, func(b *testing.B) {
				cfg := ops.DefaultExtractConfig()
				cfg.Anomaly.Alphabet = alphabet
				cfg.Anomaly.Window = window
				b.SetBytes(int64(8 * len(clip.Samples)))
				b.ReportAllocs()
				var red float64
				for i := 0; i < b.N; i++ {
					ext, err := core.NewExtractor(cfg).Extract(ops.Clip{
						ID: "ablate", SampleRate: clip.SampleRate, Samples: clip.Samples,
					})
					if err != nil {
						b.Fatal(err)
					}
					red = ext.Reduction()
				}
				b.ReportMetric(red*100, "reduction%")
			})
		}
	}
}

// BenchmarkAblationMAWindow sweeps the moving-average smoothing window
// (paper: 2250) and reports ensemble fragmentation: small windows split
// songs into slivers, large ones merge distinct events.
func BenchmarkAblationMAWindow(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	clip, err := synth.GenerateClip(rng, synth.ClipConfig{Seconds: 10, Events: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, window := range []int{500, 2250, 9000} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			cfg := ops.DefaultExtractConfig()
			cfg.SmoothWindow = window
			cfg.TriggerWarmup = window
			cfg.TriggerHangover = 2 * window
			b.ReportAllocs()
			var count int
			for i := 0; i < b.N; i++ {
				ext, err := core.NewExtractor(cfg).Extract(ops.Clip{
					ID: "ablate", SampleRate: clip.SampleRate, Samples: clip.Samples,
				})
				if err != nil {
					b.Fatal(err)
				}
				count = len(ext.Ensembles)
			}
			b.ReportMetric(float64(count), "ensembles")
		})
	}
}

// BenchmarkAblationPAAFactor sweeps the PAA reduction factor of the
// feature pipeline (paper contrasts 1x and 10x) and reports classifier
// accuracy on a small dataset.
func BenchmarkAblationPAAFactor(b *testing.B) {
	for _, factor := range []int{1, 5, 10, 20} {
		b.Run(fmt.Sprintf("factor=%d", factor), func(b *testing.B) {
			b.ReportAllocs()
			var acc float64
			for i := 0; i < b.N; i++ {
				ds, err := core.BuildDataset(core.DatasetConfig{
					Counts:    core.ScaleCounts(core.PaperCounts(), 0.04),
					PAAFactor: factor,
					Seed:      5,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := eval.LeaveOneOutEnsembles(ds.Ensembles, eval.Options{
					Meso:        experiments.MesoConfig(),
					Repetitions: 1,
					MaxFolds:    20,
					Seed:        5,
				})
				if err != nil {
					b.Fatal(err)
				}
				acc = res.MeanAccuracy
			}
			b.ReportMetric(acc*100, "accuracy%")
		})
	}
}

// BenchmarkAblationMesoDelta sweeps the sensitivity-sphere growth
// fraction, reporting sphere granularity and accuracy.
func BenchmarkAblationMesoDelta(b *testing.B) {
	ds, err := core.BuildDataset(core.DatasetConfig{
		Counts:    core.ScaleCounts(core.PaperCounts(), 0.04),
		PAAFactor: 10,
		Seed:      6,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, frac := range []float64{0.2, 0.45, 0.8, 1.5} {
		b.Run(fmt.Sprintf("delta=%.2f", frac), func(b *testing.B) {
			b.ReportAllocs()
			var spheres int
			var acc float64
			for i := 0; i < b.N; i++ {
				cfg := meso.Config{DeltaFraction: frac}
				cls := core.NewClassifier(cfg)
				for _, e := range ds.Ensembles {
					if err := cls.TrainEnsemble(e); err != nil {
						b.Fatal(err)
					}
				}
				spheres = cls.MESO().SphereCount()
				correct := 0
				for _, e := range ds.Ensembles {
					vote, err := cls.ClassifyEnsemble(e.Patterns)
					if err != nil {
						b.Fatal(err)
					}
					if vote.Label == e.Label {
						correct++
					}
				}
				acc = float64(correct) / float64(len(ds.Ensembles))
			}
			b.ReportMetric(float64(spheres), "spheres")
			b.ReportMetric(acc*100, "resub-accuracy%")
		})
	}
}

// BenchmarkAblationFullClipPipeline measures end-to-end throughput of the
// complete Figure 5 chain (extraction + spectral + patterns) over one
// clip, in samples/sec terms via SetBytes.
func BenchmarkAblationFullClipPipeline(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	clip, err := synth.GenerateClip(rng, synth.ClipConfig{Seconds: 10, Events: 2})
	if err != nil {
		b.Fatal(err)
	}
	fz := &core.Featurizer{PAAFactor: 10}
	b.SetBytes(int64(8 * len(clip.Samples)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ext, err := core.NewExtractor(ops.DefaultExtractConfig()).Extract(ops.Clip{
			ID: "bench", SampleRate: clip.SampleRate, Samples: clip.Samples,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range ext.Ensembles {
			if _, err := fz.Features(e); err != nil {
				b.Fatal(err)
			}
		}
	}
}
